#include "parallel/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace cgp::parallel {

thread_pool::thread_pool(unsigned n) {
  workers_ = n != 0 ? n : std::max(1u, std::thread::hardware_concurrency());
  threads_.reserve(workers_);
  for (unsigned i = 0; i < workers_; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

thread_pool::~thread_pool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void thread_pool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void thread_pool::run_chunks(std::size_t chunks,
                             const std::function<void(std::size_t)>& fn) {
  if (chunks == 0) return;
  if (chunks == 1) {
    fn(0);
    return;
  }
  struct barrier_state {
    std::mutex m;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  };
  barrier_state bs{.remaining = chunks};
  for (std::size_t c = 0; c < chunks; ++c) {
    submit([&bs, &fn, c] {
      try {
        fn(c);
      } catch (...) {
        const std::lock_guard lock(bs.m);
        if (!bs.error) bs.error = std::current_exception();
      }
      const std::lock_guard lock(bs.m);
      if (--bs.remaining == 0) bs.done.notify_all();
    });
  }
  std::unique_lock lock(bs.m);
  bs.done.wait(lock, [&bs] { return bs.remaining == 0; });
  if (bs.error) std::rethrow_exception(bs.error);
}

thread_pool& thread_pool::default_pool() {
  static thread_pool pool;
  return pool;
}

}  // namespace cgp::parallel
