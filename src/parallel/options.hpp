// Unified executor construction knobs, mirroring the `net_options`
// redesign of the distributed layer (DESIGN.md §7): one aggregate naming
// every orthogonal dimension, designated initializers at the call site,
// and eager validation with a descriptive `std::invalid_argument` instead
// of a misconfigured pool that misbehaves an hour later.
//
//   work_stealing_pool pool({.workers = 8, .steal_attempts = 2});
//   thread_pool legacy({.workers = 4, .queue_capacity = 4096});
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>

namespace cgp::parallel {

/// Aggregate of every orthogonal executor construction dimension.  Both
/// `Executor` models (thread_pool, work_stealing_pool) construct from it;
/// knobs a model does not need (steal_attempts on the legacy pool) are
/// validated but otherwise ignored, so options objects are portable
/// across models — the point of constructing through the concept.
struct pool_options {
  /// Worker thread count; 0 = auto (hardware concurrency, at least 1).
  unsigned workers = 0;
  /// Soft bound on queued-but-unclaimed tasks; 0 = unbounded.  When the
  /// bound is hit, `submit` blocks the producer until a consumer drains
  /// (backpressure, not rejection — fork-join callers would deadlock on
  /// rejection).
  std::size_t queue_capacity = 0;
  /// Work-stealing only: victims probed per failed local pop before the
  /// worker considers parking.  Every probe round still scans all peers
  /// once; this knob caps the *random* probes that precede the scan.
  unsigned steal_attempts = 4;
  /// Idle workers park on a condition variable for at most this long
  /// before rescanning (bounds the cost of a lost wakeup race).
  std::uint32_t park_timeout_us = 2000;

  /// The worker count after resolving the auto default.
  [[nodiscard]] unsigned resolved_workers() const noexcept {
    return workers != 0 ? workers
                        : std::max(1u, std::thread::hardware_concurrency());
  }

  /// Throws std::invalid_argument naming the offending knob.
  void validate() const {
    if (workers > 4096)
      throw std::invalid_argument(
          "pool_options.workers = " + std::to_string(workers) +
          " exceeds the 4096-thread sanity bound");
    if (queue_capacity != 0 && queue_capacity < resolved_workers())
      throw std::invalid_argument(
          "pool_options.queue_capacity = " + std::to_string(queue_capacity) +
          " is smaller than the worker count (" +
          std::to_string(resolved_workers()) +
          "); a pool that cannot hold one task per worker serializes");
    if (steal_attempts == 0)
      throw std::invalid_argument(
          "pool_options.steal_attempts must be at least 1; a thief that "
          "never probes can never steal");
    if (steal_attempts > 1024)
      throw std::invalid_argument(
          "pool_options.steal_attempts = " + std::to_string(steal_attempts) +
          " exceeds the 1024-probe sanity bound");
    if (park_timeout_us == 0)
      throw std::invalid_argument(
          "pool_options.park_timeout_us must be nonzero; a zero park "
          "timeout spins idle workers at 100% CPU");
    if (park_timeout_us > 10'000'000)
      throw std::invalid_argument(
          "pool_options.park_timeout_us = " +
          std::to_string(park_timeout_us) +
          " exceeds the 10-second sanity bound");
  }
};

}  // namespace cgp::parallel
