// Tests for the distributed health observatory (DESIGN.md §14): roll-up
// fold arithmetic, the node -> health-shard mapping, send-keyed activity
// tracking (a shard that only RECEIVES is not making progress), seeded
// reservoir determinism and capacity, SLO episode semantics with their
// verdict side effects (counter + flight note + trace instant), the
// cgp.health.v1 validator's tamper detection, byte-identical manual-clock
// exports, cross-backend per-shard parity, and — via whole-binary
// operator new/delete shims — the O(shards) memory contract at a million
// nodes.
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "distributed/algorithms.hpp"
#include "distributed/inproc_transport.hpp"
#include "distributed/network.hpp"
#include "distributed/parallel_transport.hpp"
#include "telemetry/export.hpp"
#include "telemetry/health.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace dist = cgp::distributed;
namespace health = cgp::telemetry::health;
namespace telemetry = cgp::telemetry;

// ---------------------------------------------------------------------------
// Counting allocator shims (whole-binary; the scale test reads the deltas)
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::size_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t size) {
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

// Every test owns the global observatory for its duration: enable with
// its own options, disable + reset on the way out.
class observatory_session {
 public:
  explicit observatory_session(health::health_options opts) {
    health::observatory::global().enable(std::move(opts));
  }
  ~observatory_session() {
    health::observatory::global().disable();
    health::observatory::global().reset();
  }
};

void expect_rows_equal(const health::shard_rollup& a,
                       const health::shard_rollup& b, const std::string& who) {
  EXPECT_EQ(a.routed, b.routed) << who;
  EXPECT_EQ(a.delivered, b.delivered) << who;
  EXPECT_EQ(a.dropped, b.dropped) << who;
  EXPECT_EQ(a.duplicated, b.duplicated) << who;
  EXPECT_EQ(a.last_active_round, b.last_active_round) << who;
  EXPECT_EQ(a.rounds_active, b.rounds_active) << who;
  EXPECT_EQ(a.latency_count, b.latency_count) << who;
  EXPECT_EQ(a.latency_sum, b.latency_sum) << who;
  EXPECT_EQ(a.depth_count, b.depth_count) << who;
  EXPECT_EQ(a.depth_sum, b.depth_sum) << who;
  EXPECT_EQ(a.latency_buckets, b.latency_buckets) << who;
  EXPECT_EQ(a.depth_buckets, b.depth_buckets) << who;
}

}  // namespace

// ---------------------------------------------------------------------------
// roll-up arithmetic and shard mapping
// ---------------------------------------------------------------------------

TEST(HealthRollupTest, FoldSumsCountsAndMaxesActivity) {
  health::shard_rollup a;
  a.routed = 10;
  a.delivered = 8;
  a.dropped = 1;
  a.duplicated = 2;
  a.last_active_round = 3;
  a.rounds_active = 2;
  a.latency_count = 2;
  a.latency_sum = 7;
  a.depth_count = 2;
  a.depth_sum = 9;
  a.latency_buckets[2] = 2;
  a.depth_buckets[3] = 2;
  health::shard_rollup b;
  b.routed = 5;
  b.delivered = 4;
  b.dropped = 0;
  b.duplicated = 1;
  b.last_active_round = 7;
  b.rounds_active = 4;
  b.latency_count = 4;
  b.latency_sum = 11;
  b.depth_count = 4;
  b.depth_sum = 6;
  b.latency_buckets[2] = 1;
  b.latency_buckets[5] = 3;
  b.depth_buckets[3] = 4;
  a.fold(b);
  EXPECT_EQ(a.routed, 15u);
  EXPECT_EQ(a.delivered, 12u);
  EXPECT_EQ(a.dropped, 1u);
  EXPECT_EQ(a.duplicated, 3u);
  EXPECT_EQ(a.last_active_round, 7u);  // activity MAXES, it does not sum
  EXPECT_EQ(a.rounds_active, 6u);
  EXPECT_EQ(a.latency_count, 6u);
  EXPECT_EQ(a.latency_sum, 18u);
  EXPECT_EQ(a.depth_count, 6u);
  EXPECT_EQ(a.depth_sum, 15u);
  EXPECT_EQ(a.latency_buckets[2], 3u);
  EXPECT_EQ(a.latency_buckets[5], 3u);
  EXPECT_EQ(a.depth_buckets[3], 6u);
}

TEST(HealthTrackTest, ShardMappingIsContiguousAndClamped) {
  observatory_session session({.shards = 16, .manual_clock = true});
  auto& obs = health::observatory::global();
  // 100 nodes over 16 shards: width ceil(100/16) = 7, so 15 shards carry
  // nodes and the last one is short (98..99).
  health::backend_track* t = obs.begin_run("sim", 100);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->shards_used(), 15u);
  EXPECT_EQ(t->shard_of(0), 0u);
  EXPECT_EQ(t->shard_of(6), 0u);
  EXPECT_EQ(t->shard_of(7), 1u);
  EXPECT_EQ(t->shard_of(99), 14u);
  // Out-of-range nodes clamp to the last slot instead of indexing past it.
  EXPECT_EQ(t->shard_of(100'000), 15u);
  // A million-node run re-derives the mapping on the SAME fixed slots.
  health::backend_track* again = obs.begin_run("sim", 1'000'000);
  EXPECT_EQ(again, t);  // stable pointer: accumulators persist across runs
  EXPECT_EQ(t->shards_used(), 16u);
  EXPECT_EQ(t->shard_of(62'499), 0u);
  EXPECT_EQ(t->shard_of(62'500), 1u);
  EXPECT_EQ(t->shard_of(999'999), 15u);
}

// ---------------------------------------------------------------------------
// activity tracking: progress is SENDS
// ---------------------------------------------------------------------------

TEST(HealthTrackTest, ActivityFollowsSendsNotDeliveries) {
  observatory_session session(
      {.shards = 4, .reservoir_k = 4, .manual_clock = true});
  auto& obs = health::observatory::global();
  health::backend_track* t = obs.begin_run("sim", 8);  // width 2: 4 shards
  ASSERT_NE(t, nullptr);
  // Round 0: both shards route; shard 1's mail lands on node 3.
  t->on_send(0, false, false);
  t->on_send(2, false, false);
  t->on_delivered(1);
  t->on_delivered(3);
  t->end_round(0);
  // Rounds 1..2: shard 0 keeps sending; shard 1 only RECEIVES (the
  // crashed-node shape: neighbors keep gossiping at it).
  for (std::size_t r = 1; r <= 2; ++r) {
    t->on_send(0, false, false);
    t->on_delivered(3);
    t->end_round(r);
  }
  const health::backend_snapshot snap = t->snapshot();
  ASSERT_EQ(snap.shards.size(), 4u);
  const health::shard_rollup& active = snap.shards[0];
  const health::shard_rollup& receiver = snap.shards[1];
  EXPECT_EQ(active.routed, 3u);
  EXPECT_EQ(active.last_active_round, 3u);  // 1 + last round it sent
  EXPECT_EQ(active.rounds_active, 3u);
  // The receiver took deliveries in every round — its depth and latency
  // histograms advance — but its ACTIVITY is frozen at round 0.
  EXPECT_EQ(receiver.routed, 1u);
  EXPECT_EQ(receiver.delivered, 3u);
  EXPECT_EQ(receiver.depth_count, 3u);
  EXPECT_EQ(receiver.latency_count, 3u);
  EXPECT_EQ(receiver.last_active_round, 1u);
  EXPECT_EQ(receiver.rounds_active, 1u);
  // Manual-clock latency is a pure function of the round's deliveries
  // (delivered_delta + 1): shard 0 took one delivery in round 0 and none
  // after, so its latency stream is 2, 1, 1.
  EXPECT_EQ(active.latency_sum, 4u);
  // Reservoir offers follow the same rule: the receiver offered only its
  // one sending round.
  std::size_t receiver_exemplars = 0;
  for (const health::exemplar& ex : snap.reservoir)
    if (ex.shard == 1) ++receiver_exemplars;
  EXPECT_EQ(receiver_exemplars, 1u);
  EXPECT_EQ(snap.reservoir_seen, 4u);  // 3 offers from shard 0 + 1 from 1
}

// ---------------------------------------------------------------------------
// reservoirs
// ---------------------------------------------------------------------------

TEST(HealthReservoirTest, SeededSamplingIsDeterministicAndBounded) {
  constexpr std::size_t kK = 3;
  constexpr std::size_t kRounds = 20;
  const auto feed = [] {
    auto& obs = health::observatory::global();
    obs.reset();
    health::backend_track* t = obs.begin_run("sim", 8);
    for (std::size_t r = 0; r < kRounds; ++r) {
      t->on_send(0, false, false);  // shard 0
      t->on_send(7, false, false);  // shard 3
      t->end_round(r);
    }
    return t->snapshot();
  };
  observatory_session session(
      {.shards = 4, .reservoir_k = kK, .seed = 7, .manual_clock = true});
  const health::backend_snapshot first = feed();
  const health::backend_snapshot second = feed();
  // Bounded: every shard retains at most k exemplars despite 20 offers.
  EXPECT_EQ(first.reservoir_seen, 2 * kRounds);
  std::size_t per_shard[4] = {0, 0, 0, 0};
  for (const health::exemplar& ex : first.reservoir) {
    ASSERT_LT(ex.shard, 4u);
    ++per_shard[ex.shard];
    EXPECT_GE(ex.seen, 1u);
    EXPECT_LE(ex.seen, kRounds);
  }
  EXPECT_EQ(per_shard[0], kK);
  EXPECT_EQ(per_shard[3], kK);
  // The survivors are not just the first k: late admissions must have
  // displaced early ones somewhere across the two reservoirs.
  bool late_admission = false;
  for (const health::exemplar& ex : first.reservoir)
    if (ex.seen > kK) late_admission = true;
  EXPECT_TRUE(late_admission) << "algorithm R never replaced anything";
  // Deterministic: identical seed + identical stream = identical keeps.
  ASSERT_EQ(first.reservoir.size(), second.reservoir.size());
  for (std::size_t i = 0; i < first.reservoir.size(); ++i) {
    EXPECT_EQ(first.reservoir[i].shard, second.reservoir[i].shard);
    EXPECT_EQ(first.reservoir[i].round, second.reservoir[i].round);
    EXPECT_EQ(first.reservoir[i].seen, second.reservoir[i].seen);
    EXPECT_EQ(first.reservoir[i].latency, second.reservoir[i].latency);
  }
}

// ---------------------------------------------------------------------------
// SLO episodes and verdict side effects
// ---------------------------------------------------------------------------

TEST(HealthRulesTest, OneVerdictPerEpisodeWithSideEffects) {
  health::slo_rule stall;
  stall.kind = health::rule_kind::stall_budget;
  stall.name = "shard_stall";
  stall.budget = 1;
  observatory_session session(
      {.shards = 4, .manual_clock = true, .rules = {stall}});
  auto& obs = health::observatory::global();
  auto& verdict_counter =
      telemetry::registry::global().get_counter("telemetry.health.verdicts");
  const std::uint64_t counted_before = verdict_counter.value();
  health::backend_track* t = obs.begin_run("sim", 8);
  // Rounds 0..5: shard 0 routes every round, shard 1 only in round 0 —
  // after round 5 its lag (6 - 1 = 5) blows the budget of 1.
  for (std::size_t r = 0; r <= 5; ++r) {
    t->on_send(0, false, false);
    if (r == 0) t->on_send(2, false, false);
    t->end_round(r);
  }
  EXPECT_EQ(obs.tick(1000), 1u);
  // Still violated at the next tick: the episode is already flagged, so
  // no second verdict.
  EXPECT_EQ(obs.tick(2000), 0u);
  {
    const auto verdicts = obs.verdicts();
    ASSERT_EQ(verdicts.size(), 1u);
    EXPECT_EQ(verdicts[0].rule, "shard_stall");
    EXPECT_EQ(verdicts[0].target, "distributed.sim.shard1");
    EXPECT_EQ(verdicts[0].kind, health::rule_kind::stall_budget);
    EXPECT_EQ(verdicts[0].tick, 1u);
    EXPECT_EQ(verdicts[0].now_ms, 1000u);
  }
  // Side effects of the one verdict: registry counter, flight note, and
  // a trace instant naming the rule and target.
  EXPECT_EQ(verdict_counter.value(), counted_before + 1);
  bool flight_note = false;
  for (const auto& e : telemetry::live::flight_recorder::global().snapshot())
    if (e.name == "health.shard_stall") flight_note = true;
  EXPECT_TRUE(flight_note);
  const std::string trace_json =
      telemetry::trace::sink::global().export_chrome_trace();
  EXPECT_NE(trace_json.find("health.shard_stall: distributed.sim.shard1"),
            std::string::npos);
  // The condition clears (shard 1 routes again) — the episode re-arms...
  t->on_send(0, false, false);
  t->on_send(2, false, false);
  t->end_round(6);
  EXPECT_EQ(obs.tick(3000), 0u);
  // ...and a FRESH stall of the same shard is a fresh verdict.
  for (std::size_t r = 7; r <= 9; ++r) {
    t->on_send(0, false, false);
    t->end_round(r);
  }
  EXPECT_EQ(obs.tick(4000), 1u);
  EXPECT_EQ(obs.verdicts().size(), 2u);
  EXPECT_EQ(verdict_counter.value(), counted_before + 2);
}

// ---------------------------------------------------------------------------
// export + validator
// ---------------------------------------------------------------------------

namespace {

// A small synthetic scenario that produces every document section: two
// backends, uneven shards, a verdict, retained exemplars.
std::string synthetic_export() {
  auto& obs = health::observatory::global();
  obs.reset();
  for (const char* backend : {"sim", "inproc"}) {
    health::backend_track* t = obs.begin_run(backend, 8);
    for (std::size_t r = 0; r <= 5; ++r) {
      t->on_send(0, r == 3, r == 4);  // one drop, one duplicate
      if (r == 0) t->on_send(2, false, false);
      t->on_delivered(1);
      t->end_round(r);
    }
  }
  obs.tick(1000);
  return obs.export_json();
}

}  // namespace

TEST(HealthExportTest, ManualClockExportIsByteIdentical) {
  health::slo_rule stall;
  stall.kind = health::rule_kind::stall_budget;
  stall.name = "shard_stall";
  stall.budget = 1;
  observatory_session session(
      {.shards = 4, .reservoir_k = 3, .seed = 9, .manual_clock = true,
       .rules = {stall}});
  const std::string first = synthetic_export();
  const std::string second = synthetic_export();
  EXPECT_EQ(first, second);
  // And a REAL distributed run is just as reproducible under the manual
  // clock: same seed, same faults, same document bytes.
  const auto real_run = [] {
    auto& obs = health::observatory::global();
    obs.reset();
    dist::net_options opts;
    opts.nodes = 32;
    opts.topo = dist::topology::ring;
    opts.seed = 11;
    opts.faults.drop = 0.04;
    opts.faults.duplicate = 0.02;
    dist::sim_transport net(opts);
    net.spawn(dist::gossip_membership(4));
    net.run(10);
    obs.tick(500);
    return obs.export_json();
  };
  EXPECT_EQ(real_run(), real_run());
}

TEST(HealthExportTest, ValidatorAcceptsRealExportAndRejectsTampering) {
  health::slo_rule stall;
  stall.kind = health::rule_kind::stall_budget;
  stall.name = "shard_stall";
  stall.budget = 1;
  observatory_session session(
      {.shards = 4, .reservoir_k = 3, .seed = 9, .manual_clock = true,
       .rules = {stall}});
  const std::string json = synthetic_export();
  const telemetry::json_value doc = telemetry::parse_json(json);
  {
    const auto v = health::validate_health_export(doc);
    EXPECT_TRUE(v.ok) << v.error_text();
    EXPECT_EQ(v.backends, 2u);
    EXPECT_GT(v.shards, 0u);
    EXPECT_GT(v.exemplars, 0u);
    EXPECT_EQ(v.verdicts, 2u);  // one stalled shard per backend
  }
  {  // wrong schema tag
    telemetry::json_value bad = telemetry::parse_json(json);
    bad.obj["schema"].str = "cgp.health.v2";
    EXPECT_FALSE(health::validate_health_export(bad).ok);
  }
  {  // backend rollup no longer the sum of its shard rows
    telemetry::json_value bad = telemetry::parse_json(json);
    bad.obj["backends"].arr[0].obj["rollup"].obj["routed"].num += 1;
    EXPECT_FALSE(health::validate_health_export(bad).ok);
  }
  {  // run-level rollup no longer the fold of the backends
    telemetry::json_value bad = telemetry::parse_json(json);
    bad.obj["rollup"].obj["delivered"].num += 1;
    EXPECT_FALSE(health::validate_health_export(bad).ok);
  }
  {  // a reservoir holding more than k exemplars for one shard
    telemetry::json_value bad = telemetry::parse_json(json);
    auto& reservoir = bad.obj["backends"].arr[0].obj["reservoir"].arr;
    ASSERT_FALSE(reservoir.empty());
    for (int i = 0; i < 4; ++i) reservoir.push_back(reservoir.front());
    EXPECT_FALSE(health::validate_health_export(bad).ok);
  }
  {  // 0 is not a valid 1-based admission index
    telemetry::json_value bad = telemetry::parse_json(json);
    bad.obj["backends"].arr[0].obj["reservoir"].arr[0].obj["seen"].num = 0;
    EXPECT_FALSE(health::validate_health_export(bad).ok);
  }
  {  // a verdict from a tick that never happened
    telemetry::json_value bad = telemetry::parse_json(json);
    bad.obj["verdicts"].arr[0].obj["tick"].num = 99;
    EXPECT_FALSE(health::validate_health_export(bad).ok);
  }
  {  // a verdict referencing an undeclared rule
    telemetry::json_value bad = telemetry::parse_json(json);
    bad.obj["verdicts"].arr[0].obj["rule"].str = "no_such_rule";
    EXPECT_FALSE(health::validate_health_export(bad).ok);
  }
  {  // a histogram whose buckets disagree with its count
    telemetry::json_value bad = telemetry::parse_json(json);
    bad.obj["backends"].arr[0].obj["shards"].arr[0].obj["latency"]
        .obj["count"].num += 1;
    EXPECT_FALSE(health::validate_health_export(bad).ok);
  }
}

// ---------------------------------------------------------------------------
// cross-backend parity
// ---------------------------------------------------------------------------

TEST(HealthParityTest, PerShardRollupsMatchAcrossBackends) {
  observatory_session session(
      {.shards = 8, .reservoir_k = 4, .seed = 5, .manual_clock = true});
  auto& obs = health::observatory::global();
  obs.reset();
  const auto drive = [](auto* net) {
    net->spawn(dist::gossip_membership(4));
    (void)net->run(10);
  };
  dist::net_options opts;
  opts.nodes = 48;
  opts.topo = dist::topology::ring;
  opts.seed = 11;
  opts.workers = 3;
  opts.faults.drop = 0.03;
  opts.faults.duplicate = 0.02;
  {
    dist::sim_transport net(opts);
    drive(&net);
  }
  {
    dist::parallel_transport net(opts);
    drive(&net);
  }
  {
    dist::inproc_transport net(opts);
    drive(&net);
  }
  const auto snaps = obs.snapshots();
  ASSERT_EQ(snaps.size(), 3u);
  const health::backend_snapshot* sim = nullptr;
  for (const auto& s : snaps)
    if (s.name == "sim") sim = &s;
  ASSERT_NE(sim, nullptr);
  for (const auto& s : snaps) {
    ASSERT_EQ(s.shards.size(), sim->shards.size()) << s.name;
    EXPECT_EQ(s.rounds, sim->rounds) << s.name;
    for (std::size_t i = 0; i < s.shards.size(); ++i)
      expect_rows_equal(s.shards[i], sim->shards[i],
                        s.name + " shard " + std::to_string(i));
    expect_rows_equal(s.rollup, sim->rollup, s.name + " rollup");
    // Same seed, same per-shard streams: the threaded backends retain the
    // exact exemplar set the simulator does.
    ASSERT_EQ(s.reservoir.size(), sim->reservoir.size()) << s.name;
    EXPECT_EQ(s.reservoir_seen, sim->reservoir_seen) << s.name;
    for (std::size_t i = 0; i < s.reservoir.size(); ++i) {
      EXPECT_EQ(s.reservoir[i].shard, sim->reservoir[i].shard) << s.name;
      EXPECT_EQ(s.reservoir[i].round, sim->reservoir[i].round) << s.name;
      EXPECT_EQ(s.reservoir[i].seen, sim->reservoir[i].seen) << s.name;
    }
  }
}

// ---------------------------------------------------------------------------
// O(shards) memory at a million nodes
// ---------------------------------------------------------------------------

TEST(HealthScaleTest, TrackStateIsOShardsNotONodes) {
  observatory_session session(
      {.shards = 16, .reservoir_k = 8, .manual_clock = true});
  auto& obs = health::observatory::global();
  obs.reset();
  // Creating the track for a MILLION-node run must allocate shard-sized
  // state only: 16 slots + 16 rows + 16 reservoirs, nowhere near the
  // ~megabyte a single per-node array would cost.
  const std::size_t before = g_alloc_bytes.load(std::memory_order_relaxed);
  health::backend_track* t = obs.begin_run("sim", 1'000'000);
  const std::size_t track_bytes =
      g_alloc_bytes.load(std::memory_order_relaxed) - before;
  ASSERT_NE(t, nullptr);
  EXPECT_LT(track_bytes, 256u * 1024u)
      << "begin_run(1M) allocated " << track_bytes
      << " bytes — per-node state crept in";
  // The message hooks allocate NOTHING (relaxed fetch_adds on fixed slots).
  const std::size_t hooks_before =
      g_alloc_bytes.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < 1000; ++i) {
    t->on_send(i * 997, false, false);
    t->on_delivered(999'999 - i * 991);
  }
  EXPECT_EQ(g_alloc_bytes.load(std::memory_order_relaxed), hooks_before);
  // Round barrier + snapshot + a tick stay O(shards) too.
  t->end_round(0);
  const health::backend_snapshot snap = t->snapshot();
  EXPECT_EQ(snap.nodes, 1'000'000u);
  EXPECT_EQ(snap.shards.size(), 16u);
  (void)obs.tick(100);
  const std::size_t total =
      g_alloc_bytes.load(std::memory_order_relaxed) - before;
  EXPECT_LT(total, 1024u * 1024u)
      << "per-round/per-tick work allocated " << total << " bytes";
}

TEST(HealthScaleTest, DisabledObservatoryHandsOutNullTracks) {
  auto& obs = health::observatory::global();
  obs.disable();
  obs.reset();
  EXPECT_EQ(obs.begin_run("sim", 64), nullptr);
  EXPECT_EQ(obs.tick(1), 0u);  // no-op, no verdicts
  EXPECT_TRUE(obs.verdicts().empty());
}
