// Tests for the algorithm concept taxonomies (Section 4) and their
// integration with the simulator's measured statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "distributed/algorithms.hpp"
#include "taxonomy/taxonomy.hpp"

namespace cgp::taxonomy {
namespace {

TEST(Taxonomy, DimensionsAndConcepts) {
  const taxonomy t = distributed_taxonomy();
  const auto dims = t.dimensions();
  // The seven orthogonal dimensions of Section 4.
  EXPECT_EQ(dims.size(), 7u);
  for (const char* d : {"problem", "topology", "fault-tolerance",
                        "information-sharing", "strategy", "timing",
                        "process-management"}) {
    EXPECT_TRUE(std::find(dims.begin(), dims.end(), d) != dims.end()) << d;
  }
  const auto topo = t.concepts_in("topology");
  EXPECT_TRUE(std::find(topo.begin(), topo.end(), "ring") != topo.end());
}

TEST(Taxonomy, DuplicateDimensionRejected) {
  taxonomy t("x");
  t.add_dimension("problem", "any");
  EXPECT_THROW(t.add_dimension("problem", "any"), std::invalid_argument);
}

TEST(Taxonomy, UnknownClassificationRejected) {
  taxonomy t("x");
  t.add_dimension("problem", "any");
  EXPECT_THROW(t.add_algorithm({.name = "a",
                                .classification = {{"nope", "any"}}}),
               std::invalid_argument);
  EXPECT_THROW(t.add_algorithm({.name = "a",
                                .classification = {{"problem", "nope"}}}),
               std::invalid_argument);
}

TEST(Taxonomy, QueryByRefinement) {
  const taxonomy t = distributed_taxonomy();
  // Everything classified under a concrete topology matches 'arbitrary'...
  const auto all = t.query({{"topology", "arbitrary"}});
  EXPECT_GE(all.size(), 6u);
  // ...but only ring algorithms match 'ring'.
  const auto ring = t.query({{"topology", "ring"}});
  for (const auto& r : ring) EXPECT_EQ(r.classification.at("topology"), "ring");
  EXPECT_GE(ring.size(), 3u);
}

TEST(Taxonomy, FaultToleranceRefinesUpward) {
  const taxonomy t = distributed_taxonomy();
  // Requiring crash tolerance must exclude the fault-intolerant election
  // algorithms but keep the heartbeat detector and flooding.
  const auto tolerant = t.query({{"fault-tolerance", "crash"}});
  for (const auto& r : tolerant)
    EXPECT_NE(r.classification.at("fault-tolerance"), "none") << r.name;
  EXPECT_TRUE(std::any_of(tolerant.begin(), tolerant.end(), [](const auto& r) {
    return r.name == "heartbeat-failure-detector";
  }));
}

TEST(Taxonomy, TimingRefinement) {
  const taxonomy t = distributed_taxonomy();
  // An asynchronous-capable algorithm also serves synchronous deployments;
  // a synchronous-only one does not serve asynchronous deployments.
  const auto async_ok = t.query(
      {{"problem", "leader-election"}, {"timing", "asynchronous"}});
  for (const auto& r : async_ok)
    EXPECT_EQ(r.classification.at("timing"), "asynchronous") << r.name;
  const auto sync_ok =
      t.query({{"problem", "leader-election"}, {"timing", "synchronous"}});
  EXPECT_GT(sync_ok.size(), async_ok.size());
}

TEST(Taxonomy, SelectionPicksAnNLogNAlgorithmOnLargeRings) {
  // "helps a system designer to pick the correct algorithm": minimizing
  // messages for a 1024-node ring must not choose quadratic LCR; among the
  // Theta(n log n) contenders Peterson's smaller constant wins.
  const taxonomy t = distributed_taxonomy();
  const auto best = t.select(
      {{"problem", "leader-election"}, {"topology", "ring"}}, "messages",
      {{"n", 1024.0}});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->name, "peterson-leader-election");
  // Restricting to bidirectional strategies (HS) still beats LCR.
  const auto hs_cost =
      t.find("hs-leader-election")->costs.at("messages").eval({{"n", 1024.0}});
  const auto lcr_cost =
      t.find("lcr-leader-election")->costs.at("messages").eval({{"n", 1024.0}});
  EXPECT_LT(hs_cost, lcr_cost);
}

TEST(Taxonomy, SelectionPicksLcrOnTinyRings) {
  // On very small rings the constant factors flip the choice.
  const taxonomy t = distributed_taxonomy();
  const auto best = t.select(
      {{"problem", "leader-election"}, {"topology", "ring"}}, "messages",
      {{"n", 4.0}});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->name, "lcr-leader-election");
}

TEST(Taxonomy, SelectEmptyWhenNothingMatches) {
  const taxonomy t = distributed_taxonomy();
  EXPECT_FALSE(t.select({{"problem", "mutual-exclusion"}}, "messages",
                        {{"n", 8.0}})
                   .has_value());
}

TEST(Taxonomy, ClaimedBoundsDominateMeasuredCounts) {
  // The taxonomy's complexity guarantees are real promises: the simulator's
  // measured message counts must stay below each claimed bound.
  const taxonomy t = distributed_taxonomy();
  for (const std::size_t n : {16u, 64u, 256u}) {
    const auto lcr = distributed::run_ring_election(
        distributed::lcr_leader_election(), {.nodes = n});
    const auto hs = distributed::run_ring_election(
        distributed::hs_leader_election(), {.nodes = n});
    const double claimed_lcr =
        t.find("lcr-leader-election")->costs.at("messages").eval(
            {{"n", static_cast<double>(n)}});
    const double claimed_hs =
        t.find("hs-leader-election")->costs.at("messages").eval(
            {{"n", static_cast<double>(n)}});
    // Allow the +Theta(n) announcement round on top of the asymptotic bound.
    EXPECT_LE(static_cast<double>(lcr.stats.messages_total),
              claimed_lcr + 3.0 * static_cast<double>(n))
        << "LCR n=" << n;
    EXPECT_LE(static_cast<double>(hs.stats.messages_total),
              claimed_hs + 4.0 * static_cast<double>(n))
        << "HS n=" << n;
  }
}

TEST(SequenceTaxonomy, SortedPreconditionGating) {
  const taxonomy t = sequence_taxonomy();
  // A caller that cannot guarantee sortedness must not be offered
  // lower_bound.
  const auto unsorted =
      t.query({{"problem", "searching"}, {"precondition", "none"}});
  for (const auto& r : unsorted)
    EXPECT_EQ(r.classification.at("precondition"), "none") << r.name;
  EXPECT_TRUE(std::any_of(unsorted.begin(), unsorted.end(),
                          [](const auto& r) { return r.name == "find"; }));
}

TEST(SequenceTaxonomy, IteratorAvailabilityGating) {
  const taxonomy t = sequence_taxonomy();
  // With only forward iterators available, introsort is out but
  // forward_merge_sort matches.
  const auto sorts = t.query({{"problem", "sorting"}, {"iterator", "forward"}});
  ASSERT_EQ(sorts.size(), 1u);
  EXPECT_EQ(sorts[0].name, "forward_merge_sort");
  const auto fast = t.select({{"problem", "sorting"}}, "comparisons",
                             {{"n", 1e6}});
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(fast->name, "introsort");
}

TEST(SequenceTaxonomy, SearchSelectionPrefersBinaryOnSortedData) {
  const taxonomy t = sequence_taxonomy();
  const auto best = t.select({{"problem", "searching"}}, "comparisons",
                             {{"n", 4096.0}});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->name, "lower_bound");  // or binary_search: both O(log n)
}

TEST(GraphTaxonomy, Lookups) {
  const taxonomy t = graph_taxonomy();
  EXPECT_NE(t.find("dijkstra"), nullptr);
  const auto traversals = t.query({{"problem", "traversal"}});
  EXPECT_EQ(traversals.size(), 2u);
}

TEST(Taxonomy, CrossoverReportsWhereSelectionFlips) {
  const taxonomy t = distributed_taxonomy();
  // LCR is cheaper on tiny rings; HS from some n on.  With the recorded
  // guarantees (n^2 vs 12 n ln n) the flip happens for n around 40-60.
  const auto flip = t.crossover("lcr-leader-election", "hs-leader-election",
                                "messages", "n", 2.0, 100000.0);
  ASSERT_TRUE(flip.has_value());
  EXPECT_GT(*flip, 10.0);
  EXPECT_LT(*flip, 100.0);
  // The guarantees really do order that way on both sides of the point.
  const auto cost = [&](const char* name, double n) {
    return t.find(name)->costs.at("messages").eval({{"n", n}});
  };
  EXPECT_LT(cost("lcr-leader-election", *flip - 10.0),
            cost("hs-leader-election", *flip - 10.0));
  EXPECT_GT(cost("lcr-leader-election", *flip + 10.0),
            cost("hs-leader-election", *flip + 10.0));
}

TEST(Taxonomy, CrossoverNulloptWhenNeverReached) {
  const taxonomy t = sequence_taxonomy();
  // lower_bound (log n) never reaches find's n cost on [4, 1e6].
  EXPECT_FALSE(t.crossover("lower_bound", "find", "comparisons", "n", 4.0,
                           1e6)
                   .has_value());
  // But find reaches lower_bound immediately.
  const auto c =
      t.crossover("find", "lower_bound", "comparisons", "n", 4.0, 1e6);
  ASSERT_TRUE(c.has_value());
  EXPECT_LE(*c, 8.0);
}

TEST(Taxonomy, CrossoverMissingRecordIsNullopt) {
  const taxonomy t = sequence_taxonomy();
  EXPECT_FALSE(
      t.crossover("nope", "find", "comparisons", "n", 1.0, 10.0).has_value());
  EXPECT_FALSE(t.crossover("find", "introsort", "messages", "n", 1.0, 10.0)
                   .has_value());
}

TEST(Taxonomy, DescribeRendersRecords) {
  const taxonomy t = distributed_taxonomy();
  const std::string d = t.describe();
  EXPECT_NE(d.find("hs-leader-election"), std::string::npos);
  EXPECT_NE(d.find("messages"), std::string::npos);
  EXPECT_NE(d.find("probe-echo"), std::string::npos);
}

}  // namespace
}  // namespace cgp::taxonomy
