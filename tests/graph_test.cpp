// Tests for the graph module: concept conformance (Figs. 1-2), algorithms,
// and the disjoint-sets substrate.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"

namespace cgp::graph {
namespace {

// ---------------------------------------------------------------------------
// Concept conformance: the Fig. 1 / Fig. 2 requirements, statically checked
// ---------------------------------------------------------------------------

static_assert(core::GraphEdge<edge<>>);
static_assert(core::GraphEdge<edge<double>>);
static_assert(core::IncidenceGraph<adjacency_list<>>);
static_assert(core::IncidenceGraph<adjacency_list<double>>);
static_assert(core::VertexListGraph<adjacency_list<double>>);
static_assert(core::EdgeListGraph<adjacency_list<double>>);
static_assert(!core::GraphEdge<int>);
static_assert(!core::IncidenceGraph<std::vector<int>>);

// Fig. 2's same-type constraint: out_edge_iterator::value_type == edge_type.
static_assert(
    std::same_as<std::iterator_traits<
                     core::out_edge_iterator_t<adjacency_list<>>>::value_type,
                 core::edge_t<adjacency_list<>>>);

// ---------------------------------------------------------------------------
// adjacency_list basics
// ---------------------------------------------------------------------------

TEST(AdjacencyList, AddAndQuery) {
  adjacency_list<double> g(3);
  const auto e = g.add_edge(0, 1, 2.5);
  g.add_edge(0, 2, 1.0);
  EXPECT_EQ(source(e), 0u);
  EXPECT_EQ(target(e), 1u);
  EXPECT_EQ(num_vertices(g), 3u);
  EXPECT_EQ(num_edges(g), 2u);
  EXPECT_EQ(out_degree(0, g), 2u);
  EXPECT_EQ(out_degree(1, g), 0u);
  auto [first, last] = out_edges(0, g);
  EXPECT_EQ(static_cast<std::size_t>(std::distance(first, last)), 2u);
}

TEST(AdjacencyList, UndirectedAddsReverseOutEdge) {
  adjacency_list<> g(2, directedness::undirected);
  g.add_edge(0, 1);
  EXPECT_EQ(out_degree(0, g), 1u);
  EXPECT_EQ(out_degree(1, g), 1u);
  EXPECT_EQ(num_edges(g), 1u);  // one logical edge
}

TEST(AdjacencyList, OutOfRangeVertexThrows) {
  adjacency_list<> g(2);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW((void)out_degree(9, g), std::out_of_range);
}

TEST(AdjacencyList, VerticesRange) {
  adjacency_list<> g(4);
  std::size_t count = 0;
  for (auto v : vertices(g)) count += (v < 4) ? 1 : 100;
  EXPECT_EQ(count, 4u);
}

TEST(FirstNeighbor, Section23Example) {
  adjacency_list<> g(3);
  g.add_edge(0, 2);
  const auto [found, v] = first_neighbor(g, vertex_descriptor{0});
  EXPECT_TRUE(found);
  EXPECT_EQ(v, 2u);
  const auto [found1, v1] = first_neighbor(g, vertex_descriptor{1});
  EXPECT_FALSE(found1);
  (void)v1;
}

// ---------------------------------------------------------------------------
// BFS
// ---------------------------------------------------------------------------

TEST(BFS, DistancesOnPathGraph) {
  adjacency_list<> g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d, (std::vector<long>{0, 1, 2, 3}));
}

TEST(BFS, UnreachableVerticesStayMinusOne) {
  adjacency_list<> g(3);
  g.add_edge(0, 1);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], -1);
}

TEST(BFS, VisitorEventOrdering) {
  struct recorder {
    std::vector<std::string> events;
    void discover_vertex(vertex_descriptor v, const adjacency_list<>&) {
      events.push_back("d" + std::to_string(v));
    }
    void examine_edge(const edge<>&, const adjacency_list<>&) {}
    void tree_edge(const edge<>& e, const adjacency_list<>&) {
      events.push_back("t" + std::to_string(e.src) + std::to_string(e.dst));
    }
    void finish_vertex(vertex_descriptor v, const adjacency_list<>&) {
      events.push_back("f" + std::to_string(v));
    }
  };
  adjacency_list<> g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  recorder rec;
  (void)breadth_first_search(g, 0, rec);
  EXPECT_EQ(rec.events,
            (std::vector<std::string>{"d0", "t01", "d1", "t02", "d2", "f0",
                                      "f1", "f2"}));
}

// ---------------------------------------------------------------------------
// DFS / topological sort
// ---------------------------------------------------------------------------

TEST(Topo, SortsDag) {
  adjacency_list<> g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const auto order = topological_sort(g);
  ASSERT_EQ(order.size(), 5u);
  std::vector<std::size_t> position(5);
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (const auto& e : edges(g))
    EXPECT_LT(position[source(e)], position[target(e)]);
}

TEST(Topo, RejectsCycle) {
  adjacency_list<> g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_THROW((void)topological_sort(g), not_a_dag);
}

// ---------------------------------------------------------------------------
// Dijkstra
// ---------------------------------------------------------------------------

TEST(Dijkstra, ShortestPathsWithWeights) {
  adjacency_list<double> g(5);
  g.add_edge(0, 1, 10.0);
  g.add_edge(0, 2, 3.0);
  g.add_edge(2, 1, 4.0);
  g.add_edge(1, 3, 2.0);
  g.add_edge(2, 3, 8.0);
  g.add_edge(3, 4, 7.0);
  const auto [dist, pred] = dijkstra_shortest_paths(
      g, 0, [](const edge<double>& e) { return e.property; });
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 7.0);   // via 2
  EXPECT_DOUBLE_EQ(dist[2], 3.0);
  EXPECT_DOUBLE_EQ(dist[3], 9.0);   // 0-2-1-3
  EXPECT_DOUBLE_EQ(dist[4], 16.0);
  EXPECT_EQ(pred[1], 2u);
  EXPECT_EQ(pred[3], 1u);
}

TEST(Dijkstra, NegativeWeightRejected) {
  adjacency_list<double> g(2);
  g.add_edge(0, 1, -1.0);
  EXPECT_THROW((void)dijkstra_shortest_paths(
                   g, 0, [](const edge<double>& e) { return e.property; }),
               std::invalid_argument);
}

TEST(Dijkstra, AgreesWithBfsOnUnitWeights) {
  adjacency_list<double> g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 3, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 5, 1.0);
  const auto bfs = bfs_distances(g, 0);
  const auto [dd, pred] = dijkstra_shortest_paths(
      g, 0, [](const edge<double>&) { return 1.0; });
  (void)pred;
  for (std::size_t v = 0; v < 6; ++v) {
    if (bfs[v] >= 0) {
      EXPECT_DOUBLE_EQ(dd[v], static_cast<double>(bfs[v]));
    }
  }
}

// ---------------------------------------------------------------------------
// Disjoint sets / components / MST
// ---------------------------------------------------------------------------

TEST(DisjointSets, UniteAndFind) {
  disjoint_sets ds(5);
  EXPECT_EQ(ds.count_sets(), 5u);
  EXPECT_TRUE(ds.unite(0, 1));
  EXPECT_TRUE(ds.unite(2, 3));
  EXPECT_FALSE(ds.unite(1, 0));  // already united
  EXPECT_EQ(ds.count_sets(), 3u);
  EXPECT_TRUE(ds.same_set(0, 1));
  EXPECT_FALSE(ds.same_set(1, 2));
  EXPECT_TRUE(ds.unite(1, 3));
  EXPECT_TRUE(ds.same_set(0, 2));
}

TEST(Components, LabelsByComponent) {
  adjacency_list<> g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_NE(comp[5], comp[3]);
}

TEST(Kruskal, MinimumSpanningTree) {
  adjacency_list<double> g(4, directedness::undirected);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  g.add_edge(0, 3, 10.0);
  g.add_edge(0, 2, 2.5);
  const auto mst = kruskal_mst(g);
  ASSERT_EQ(mst.size(), 3u);
  double total = 0.0;
  for (const auto& e : mst) total += e.property;
  EXPECT_DOUBLE_EQ(total, 6.0);
}

TEST(Kruskal, ForestOnDisconnectedGraph) {
  adjacency_list<double> g(4, directedness::undirected);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 2.0);
  const auto mst = kruskal_mst(g);
  EXPECT_EQ(mst.size(), 2u);
}

}  // namespace
}  // namespace cgp::graph
