// The Executor-concept redesign, end to end: pool_options validation, the
// two pool models (move-only submit, nested fork-join, starvation
// rebalancing, destruction drains), the concurrent_map under an insert
// storm, the concept-bounded algorithms over the archetype, and the
// migrated call sites (batch rewriting, the lint service cache, parallel
// graph algorithms) producing results identical to their serial twins.
//
// NOTE: multi-label suite (parallel;telemetry) — keep to TEST/TEST_F, no
// TEST_P (see tests/CMakeLists.txt on gtest_add_tests discovery).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/instrumented.hpp"
#include "parallel/algorithms.hpp"
#include "parallel/concurrent_map.hpp"
#include "parallel/executor.hpp"
#include "parallel/options.hpp"
#include "parallel/task_group.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing_pool.hpp"
#include "rewrite/batch.hpp"
#include "rewrite/engine.hpp"
#include "stllint/service.hpp"
#include "telemetry/telemetry.hpp"

namespace par = cgp::parallel;
namespace tel = cgp::telemetry;

namespace {

// Both pools and the archetype model the concept (proof obligations also
// asserted next to each definition; repeated here so the test suite fails
// loudly if someone weakens a model).
static_assert(par::Executor<par::thread_pool>);
static_assert(par::Executor<par::work_stealing_pool>);
static_assert(par::Executor<par::executor_archetype>);

std::uint64_t counter_value(const std::string& name) {
  return tel::registry::global().get_counter(name).value();
}

bool await_count(const std::atomic<std::size_t>& done, std::size_t want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (done.load(std::memory_order_acquire) < want) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

// ---------------------------------------------------------------------------
// pool_options
// ---------------------------------------------------------------------------

TEST(PoolOptions, DefaultsValidateAndResolve) {
  const par::pool_options opts;
  EXPECT_NO_THROW(opts.validate());
  EXPECT_GE(opts.resolved_workers(), 1u);
}

TEST(PoolOptions, InvalidKnobsThrowNamingTheKnob) {
  const auto message_of = [](const par::pool_options& o) {
    try {
      o.validate();
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  EXPECT_NE(message_of({.workers = 5000}).find("workers"), std::string::npos);
  EXPECT_NE(message_of({.workers = 8, .queue_capacity = 2})
                .find("queue_capacity"),
            std::string::npos);
  EXPECT_NE(message_of({.steal_attempts = 0}).find("steal_attempts"),
            std::string::npos);
  EXPECT_NE(message_of({.steal_attempts = 2000}).find("steal_attempts"),
            std::string::npos);
  EXPECT_NE(message_of({.park_timeout_us = 0}).find("park_timeout_us"),
            std::string::npos);
  EXPECT_NE(
      message_of({.park_timeout_us = 60'000'000}).find("park_timeout_us"),
      std::string::npos);
}

TEST(PoolOptions, BothPoolsRejectInvalidOptionsAtConstruction) {
  EXPECT_THROW(par::thread_pool({.steal_attempts = 0}), std::invalid_argument);
  EXPECT_THROW(par::work_stealing_pool({.park_timeout_us = 0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Submission surface
// ---------------------------------------------------------------------------

TEST(ExecutorSubmit, ThreadPoolAcceptsMoveOnlyCallables) {
  par::thread_pool pool(2);
  auto payload = std::make_unique<int>(41);
  std::atomic<std::size_t> done{0};
  std::atomic<int> seen{0};
  pool.submit([p = std::move(payload), &done, &seen] {
    seen.store(*p + 1, std::memory_order_release);
    done.fetch_add(1, std::memory_order_acq_rel);
  });
  ASSERT_TRUE(await_count(done, 1));
  EXPECT_EQ(seen.load(std::memory_order_acquire), 42);
}

TEST(ExecutorSubmit, WorkStealingPoolAcceptsMoveOnlyCallables) {
  par::work_stealing_pool pool(2);
  auto payload = std::make_unique<int>(6);
  std::atomic<std::size_t> done{0};
  std::atomic<int> seen{0};
  pool.submit([p = std::move(payload), &done, &seen] {
    seen.store(*p * 7, std::memory_order_release);
    done.fetch_add(1, std::memory_order_acq_rel);
  });
  ASSERT_TRUE(await_count(done, 1));
  EXPECT_EQ(seen.load(std::memory_order_acquire), 42);
}

TEST(ExecutorSubmit, DeprecatedStdFunctionOverloadStillRuns) {
  par::thread_pool pool(1);
  std::atomic<std::size_t> done{0};
  std::function<void()> fn = [&done] {
    done.fetch_add(1, std::memory_order_acq_rel);
  };
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  pool.submit(fn);
#pragma GCC diagnostic pop
  EXPECT_TRUE(await_count(done, 1));
}

// ---------------------------------------------------------------------------
// Work-stealing behavior
// ---------------------------------------------------------------------------

TEST(WorkStealing, RunChunksCompletesAllAndDrains) {
  const std::uint64_t submitted_before =
      counter_value("parallel.work_stealing.tasks_submitted");
  const std::uint64_t completed_before =
      counter_value("parallel.work_stealing.tasks_completed");
  std::atomic<std::size_t> ran{0};
  {
    par::work_stealing_pool pool({.workers = 3});
    pool.run_chunks(24, [&ran](std::size_t) {
      ran.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  EXPECT_EQ(ran.load(), 24u);
  const std::uint64_t submitted =
      counter_value("parallel.work_stealing.tasks_submitted") -
      submitted_before;
  const std::uint64_t completed =
      counter_value("parallel.work_stealing.tasks_completed") -
      completed_before;
  EXPECT_EQ(submitted, 24u);
  EXPECT_EQ(completed, submitted);
}

// Planted starvation: one worker's deque is loaded with the whole workload
// (self-submission from a root task) while its peer sits idle.  The
// regression this pins down: the idle worker must STEAL its way into the
// work rather than park forever — completion alone isn't enough, the
// steals counter must move.
TEST(WorkStealing, PlantedStarvationIsRebalancedByStealing) {
  const std::uint64_t steals_before =
      counter_value("parallel.work_stealing.steals");
  constexpr std::size_t kChildren = 128;
  std::atomic<std::size_t> done{0};
  {
    par::work_stealing_pool pool({.workers = 2, .steal_attempts = 2});
    std::atomic<std::size_t> seeded{0};
    pool.submit([&pool, &done, &seeded] {
      // Runs on a worker thread, so every child lands in THIS worker's
      // deque — the planted imbalance.
      for (std::size_t i = 0; i < kChildren; ++i)
        pool.submit([&done] {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          done.fetch_add(1, std::memory_order_acq_rel);
        });
      seeded.fetch_add(1, std::memory_order_acq_rel);
    });
    ASSERT_TRUE(await_count(seeded, 1));
    ASSERT_TRUE(await_count(done, kChildren));
  }
  EXPECT_EQ(done.load(), kChildren);
  EXPECT_GT(counter_value("parallel.work_stealing.steals"), steals_before);
}

TEST(WorkStealing, NestedParallelForCompletes) {
  par::work_stealing_pool pool({.workers = 3});
  std::atomic<std::size_t> cells{0};
  par::parallel_for(
      16,
      [&](std::size_t) {
        par::parallel_for(
            16, [&](std::size_t) { cells.fetch_add(1); }, pool,
            /*grain=*/1);
      },
      pool, /*grain=*/1);
  EXPECT_EQ(cells.load(), 256u);
}

TEST(WorkStealing, NestedTaskGroupForkJoinFromExternalThread) {
  par::work_stealing_pool pool({.workers = 2});
  std::atomic<std::size_t> leaves{0};
  par::task_group<par::work_stealing_pool> group(pool);
  for (int i = 0; i < 4; ++i)
    group.run([&pool, &leaves] {
      par::task_group<par::work_stealing_pool> inner(pool);
      for (int k = 0; k < 4; ++k) inner.run([&leaves] { leaves.fetch_add(1); });
      inner.wait();
    });
  group.wait();
  EXPECT_EQ(leaves.load(), 16u);
}

TEST(WorkStealing, TaskGroupPropagatesFirstException) {
  par::work_stealing_pool pool({.workers = 2});
  par::task_group<par::work_stealing_pool> group(pool);
  group.run([] { throw std::runtime_error("boom"); });
  group.run([] {});
  EXPECT_THROW(group.wait(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Algorithms over the archetype (concept sufficiency proof, runtime half)
// ---------------------------------------------------------------------------

TEST(ExecutorAlgorithms, ArchetypeRunsAllFourAlgorithms) {
  par::executor_archetype inline_exec;
  std::vector<double> v(1000);
  std::iota(v.begin(), v.end(), 1.0);

  std::atomic<std::size_t> touched{0};
  par::parallel_for(
      v.size(), [&](std::size_t) { touched.fetch_add(1); }, inline_exec,
      /*grain=*/64);
  EXPECT_EQ(touched.load(), v.size());

  const double sum = par::parallel_reduce<std::plus<>>(
      v.begin(), v.end(), {}, inline_exec, /*grain=*/64);
  EXPECT_DOUBLE_EQ(sum, 1000.0 * 1001.0 / 2.0);

  std::vector<double> scanned(v.size());
  par::parallel_scan<std::plus<>>(v.begin(), v.end(), scanned.begin(), {},
                                  inline_exec, /*grain=*/64);
  EXPECT_DOUBLE_EQ(scanned.front(), 1.0);
  EXPECT_DOUBLE_EQ(scanned.back(), sum);

  std::vector<double> to_sort(v.rbegin(), v.rend());
  par::parallel_sort(to_sort.begin(), to_sort.end(), std::less<>{},
                     inline_exec, /*grain=*/64);
  EXPECT_TRUE(std::is_sorted(to_sort.begin(), to_sort.end()));
}

TEST(ExecutorAlgorithms, SameCallRunsOnBothPools) {
  std::vector<std::int64_t> v(50'000);
  std::iota(v.begin(), v.end(), 0);
  const std::int64_t expected = 50'000LL * 49'999LL / 2LL;

  par::thread_pool legacy(3);
  par::work_stealing_pool stealing(3);
  EXPECT_EQ(par::parallel_reduce<std::plus<>>(v.begin(), v.end(), {}, legacy,
                                              /*grain=*/1024),
            expected);
  EXPECT_EQ(par::parallel_reduce<std::plus<>>(v.begin(), v.end(), {},
                                              stealing, /*grain=*/1024),
            expected);
}

// ---------------------------------------------------------------------------
// concurrent_map
// ---------------------------------------------------------------------------

TEST(ConcurrentMap, InsertStormEveryKeyWinsExactlyOnce) {
  constexpr std::size_t kKeys = 512;
  constexpr unsigned kWriters = 4;
  par::concurrent_map<int, int> map(kKeys);
  std::vector<std::atomic<int>> wins(kKeys);
  std::vector<std::thread> writers;
  for (unsigned w = 0; w < kWriters; ++w)
    writers.emplace_back([&map, &wins, w] {
      for (std::size_t k = 0; k < kKeys; ++k) {
        const auto [it, inserted] =
            map.try_emplace(static_cast<int>(k), static_cast<int>(w));
        if (inserted) wins[k].fetch_add(1, std::memory_order_acq_rel);
        // Losers still see the winner's entry.
        EXPECT_EQ(it->first, static_cast<int>(k));
      }
    });
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(map.size(), kKeys);
  for (std::size_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(wins[k].load(), 1) << "key " << k;
    int* v = map.find(static_cast<int>(k));
    ASSERT_NE(v, nullptr);
    EXPECT_GE(*v, 0);
    EXPECT_LT(*v, static_cast<int>(kWriters));
  }
}

TEST(ConcurrentMap, PointersAreStableAcrossLaterInserts) {
  par::concurrent_map<std::string, int> map(4);  // tiny estimate: chains grow
  const auto [first_it, inserted] = map.try_emplace("anchor", 1);
  ASSERT_TRUE(inserted);
  int* anchor = map.find("anchor");
  ASSERT_NE(anchor, nullptr);
  for (int i = 0; i < 2000; ++i)
    map.try_emplace("filler" + std::to_string(i), i);
  EXPECT_EQ(map.find("anchor"), anchor);  // same address after 2000 inserts
  EXPECT_EQ(*anchor, 1);
  EXPECT_EQ(map.size(), 2001u);
}

TEST(ConcurrentMap, InsertIteratorDerefSafeDuringSameShardInserts) {
  // Regression: operator* used to index the shard's deque, racing with
  // concurrent emplace_back into the same shard (deque block-map mutation).
  // The iterator now holds the node pointer captured under the shard lock,
  // so a held iterator may be dereferenced while its shard keeps growing.
  par::concurrent_map<int, int> map(8);
  const auto [held, inserted] = map.try_emplace(0, 42);
  ASSERT_TRUE(inserted);
  std::atomic<bool> done{false};
  std::thread writer([&map, &done] {
    // std::hash<int> is identity on mainstream stdlibs, so multiples of
    // the stripe count (64) all land in the held iterator's shard.
    for (int i = 1; i <= 4000; ++i) map.try_emplace(i * 64, i);
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    EXPECT_EQ(held->first, 0);
    EXPECT_EQ(held->second, 42);
  }
  writer.join();
  EXPECT_EQ(held->second, 42);
  EXPECT_EQ(map.size(), 4001u);
}

TEST(ConcurrentMap, IterationAndClear) {
  par::concurrent_map<int, int> map(64);
  for (int i = 0; i < 100; ++i) map.insert(i, i * i);
  std::size_t seen = 0;
  for (auto it = map.begin(); it != map.end(); ++it) {
    EXPECT_EQ(it->second, it->first * it->first);
    ++seen;
  }
  EXPECT_EQ(seen, 100u);
  std::size_t visited = 0;
  map.for_each([&visited](const auto&) { ++visited; });
  EXPECT_EQ(visited, 100u);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(5), nullptr);
}

// ---------------------------------------------------------------------------
// Migrated call sites
// ---------------------------------------------------------------------------

TEST(CallSites, SimplifyBatchMatchesSerialAndSharesMemo) {
  cgp::rewrite::simplifier s;
  s.add_default_concept_rules();
  using E = cgp::rewrite::expr;
  const E x = E::var("x", "int");
  std::vector<E> shapes = {
      E::binary_op("+", x, E::int_lit(0), "int"),
      E::binary_op("*", x, E::int_lit(1), "int"),
      E::binary_op("*", x, E::int_lit(0), "int"),
      E::unary_op("-", E::unary_op("-", x, "int"), "int"),
  };
  std::vector<E> batch;
  for (int rep = 0; rep < 32; ++rep)
    for (const E& e : shapes) batch.push_back(e);

  std::vector<std::string> serial;
  for (const E& e : batch) serial.push_back(s.simplify(e).to_string());

  par::work_stealing_pool pool({.workers = 3});
  const std::vector<E> out =
      cgp::rewrite::simplify_batch(s, batch, pool, /*grain=*/4);
  ASSERT_EQ(out.size(), batch.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i].to_string(), serial[i]) << "batch index " << i;
}

TEST(CallSites, LintServiceCachesByContent) {
  const std::uint64_t hits_before = counter_value("stllint.service.cache_hits");
  const std::uint64_t misses_before =
      counter_value("stllint.service.cache_misses");
  cgp::stllint::lint_service svc;
  const std::string src =
      "void f() { vector<int> v; sort(v.begin(), v.end()); }";
  const auto& first = svc.lint(src);
  const auto& second = svc.lint(src);
  EXPECT_EQ(&first, &second);  // stable cached summary, not a recompute
  EXPECT_EQ(counter_value("stllint.service.cache_misses") - misses_before,
            1u);
  EXPECT_EQ(counter_value("stllint.service.cache_hits") - hits_before, 1u);
  EXPECT_EQ(svc.cache_size(), 1u);
}

TEST(CallSites, LintBatchOverStealingPoolSharesCache) {
  cgp::stllint::lint_service svc;
  std::vector<std::string> sources;
  for (int i = 0; i < 24; ++i)
    sources.push_back(i % 2 == 0
                          ? "void even() { vector<int> v; v.push_back(1); }"
                          : "void odd() { list<int> l; l.push_back(2); }");
  par::work_stealing_pool pool({.workers = 3});
  const auto results = svc.lint_batch(sources, pool, /*grain=*/2);
  ASSERT_EQ(results.size(), sources.size());
  for (const auto* r : results) ASSERT_NE(r, nullptr);
  EXPECT_EQ(svc.cache_size(), 2u);  // two distinct sources
  // Equal sources share the identical cached summary object.
  EXPECT_EQ(results[0], results[2]);
  EXPECT_EQ(results[1], results[3]);
}

TEST(CallSites, ParallelBfsMatchesSerial) {
  cgp::graph::adjacency_list<> g(64);
  // Deterministic sparse digraph with varied degrees + unreachable tail.
  for (std::size_t v = 0; v < 60; ++v)
    for (std::size_t k = 1; k <= 1 + v % 4; ++k) g.add_edge(v, (v * 7 + k) % 60);
  const auto [serial, serial_ops] =
      cgp::graph::instrumented::bfs_distances(g, 0);
  par::work_stealing_pool pool({.workers = 3});
  const auto [parallel, par_ops] =
      cgp::graph::instrumented::bfs_distances_parallel(g, 0, pool,
                                                       /*grain=*/4);
  EXPECT_EQ(parallel, serial);
  EXPECT_GT(par_ops, 0u);
}

TEST(CallSites, ParallelPagerankMatchesSerialClosely) {
  cgp::graph::adjacency_list<> g(48);
  for (std::size_t v = 0; v < 48; ++v)
    for (std::size_t k = 1; k <= 1 + v % 3; ++k) g.add_edge(v, (v * 5 + k) % 48);
  const auto [serial, serial_ops] =
      cgp::graph::instrumented::pagerank(g, 20, 0.85);
  par::thread_pool pool(3);
  const auto [parallel, par_ops] = cgp::graph::instrumented::pagerank_parallel(
      g, pool, 20, 0.85, /*grain=*/4);
  ASSERT_EQ(parallel.size(), serial.size());
  double serial_mass = 0.0, parallel_mass = 0.0;
  for (std::size_t v = 0; v < serial.size(); ++v) {
    EXPECT_NEAR(parallel[v], serial[v], 1e-12) << "vertex " << v;
    serial_mass += serial[v];
    parallel_mass += parallel[v];
  }
  EXPECT_NEAR(parallel_mass, serial_mass, 1e-9);  // still a distribution
  EXPECT_EQ(par_ops, serial_ops);  // identical per-sweep op accounting
}

}  // namespace
