// Conformance suite: Strict Weak Order (Fig. 6).  The four axioms plus the
// two DERIVED theorems (reflexivity/symmetry of the induced equivalence)
// are checked empirically over concrete comparators, and the same derived
// theorems are machine-checked symbolically via proof::theories — one law,
// one proof, one property.
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "check/gtest_support.hpp"
#include "check/laws.hpp"
#include "core/algebraic.hpp"
#include "proof/theories.hpp"

namespace check = cgp::check;
namespace core = cgp::core;

CGP_REGISTER_SEED_BANNER();

// A genuine SWO with NON-TRIVIAL equivalence classes: compare by absolute
// value, so x and -x are equivalent without being equal.  This exercises
// incomparability-transitivity beyond what a total order can.
struct abs_less {
  bool operator()(std::int64_t a, std::int64_t b) const {
    return std::llabs(a) < std::llabs(b);
  }
};

// The planted NON-order: <= is reflexive, so declaring it a strict weak
// order is a lie the checker must expose.
struct leq_cmp {
  bool operator()(std::int64_t a, std::int64_t b) const { return a <= b; }
};

namespace cgp::core {
template <>
struct declares_strict_weak_order<std::int64_t, abs_less> : std::true_type {};
template <>
struct declares_strict_weak_order<std::int64_t, leq_cmp> : std::true_type {};
}  // namespace cgp::core

namespace {

void expect_all_ok(const std::vector<check::result>& rs) {
  EXPECT_TRUE(check::all_ok(rs)) << check::failure_messages(rs);
  EXPECT_GT(check::total_cases(rs), 0u);
}

}  // namespace

TEST(OrderConformance, LessIsAStrictWeakOrderOnIntegers) {
  expect_all_ok(check::strict_weak_order_properties<std::int64_t, std::less<>>(
      "int64,<"));
}

TEST(OrderConformance, LessIsAStrictWeakOrderOnDoubles) {
  // Generated doubles are always finite, so < is a genuine SWO on the
  // sampled domain (NaN, the classic violation, is out of range by
  // construction — the generator documents the modeled domain).
  expect_all_ok(
      check::strict_weak_order_properties<double, std::less<>>("double,<"));
}

TEST(OrderConformance, LexicographicLessIsAStrictWeakOrderOnStrings) {
  expect_all_ok(
      check::strict_weak_order_properties<std::string, std::less<>>(
          "string,<"));
}

TEST(OrderConformance, AbsoluteValueComparisonHasRealEquivalenceClasses) {
  expect_all_ok(check::strict_weak_order_properties<std::int64_t, abs_less>(
      "int64,abs<"));

  // Sanity: the induced equivalence really is coarser than equality here,
  // i.e. this model exercises the incomparability axioms non-trivially.
  EXPECT_TRUE(core::equivalent_under<std::int64_t>(3, -3, abs_less{}));
  EXPECT_FALSE(core::equivalent_under<std::int64_t>(3, 4, abs_less{}));
}

TEST(OrderConformance, TotalOrderEquivalenceIsEquality) {
  // Empirical twin of theories::total_order_equivalence_is_equality.
  const auto res = check::for_all<std::int64_t, std::int64_t>(
      "StrictWeakOrder[int64,<].equivalence_is_equality",
      [](std::int64_t a, std::int64_t b) {
        return core::equivalent_under(a, b) == (a == b);
      });
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(OrderConformance, PlantedReflexiveComparatorIsCaught) {
  const auto rs = check::strict_weak_order_properties<std::int64_t, leq_cmp>(
      "int64,<= (planted)");
  EXPECT_FALSE(check::all_ok(rs));

  bool irreflexivity_falsified = false;
  for (const auto& r : rs) {
    if (r.name.find("irreflexivity") == std::string::npos) continue;
    ASSERT_TRUE(r.falsified) << r.message;
    irreflexivity_falsified = true;
    // x <= x holds for every x, so the minimal witness is x = 0.
    ASSERT_EQ(r.counterexample.size(), 1u);
    EXPECT_EQ(r.counterexample[0], "0");
    EXPECT_NE(r.message.find("CGP_CHECK_SEED="), std::string::npos);
  }
  EXPECT_TRUE(irreflexivity_falsified);

  // Transitivity DOES hold for <= — individual axioms, individual verdicts.
  for (const auto& r : rs) {
    if (r.name.find(".transitivity") != std::string::npos) {
      EXPECT_TRUE(r.ok) << r.message;
    }
  }
}

TEST(OrderConformance, DerivedTheoremsAreAlsoMachineChecked) {
  // The two [derived] properties sampled above are not just empirically
  // true: the proof module certifies them from the SWO axioms, generically.
  std::size_t steps = 0;
  EXPECT_NO_THROW((void)cgp::proof::theories::equivalence_reflexive().check(
      {}, &steps));
  EXPECT_GT(steps, 0u);
  EXPECT_NO_THROW(
      (void)cgp::proof::theories::equivalence_symmetric().check());
  EXPECT_NO_THROW(
      (void)cgp::proof::theories::equivalence_relation().check());
  EXPECT_NO_THROW(
      (void)cgp::proof::theories::total_order_equivalence_is_equality()
          .check());
}
