// Tests for the performance observatory (src/perf): outlier-robust
// statistics, the adaptive timer, the empirical complexity fit, the
// benchmark runner's counter attribution, the BENCH_perf.json schema,
// and the baseline regression gate.
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "check/gtest_support.hpp"
#include "check/property.hpp"
#include "core/complexity.hpp"
#include "perf/benchmark.hpp"
#include "perf/env_info.hpp"
#include "perf/fit.hpp"
#include "perf/report.hpp"
#include "perf/stats.hpp"
#include "perf/timer.hpp"
#include "telemetry/telemetry.hpp"

CGP_REGISTER_SEED_BANNER();

namespace {

using namespace cgp;
using telemetry::json_value;

// --- stats ------------------------------------------------------------------

TEST(PerfStats, MedianOddEvenEmpty) {
  EXPECT_DOUBLE_EQ(perf::median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(perf::median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(perf::median({7.0}), 7.0);
  EXPECT_DOUBLE_EQ(perf::median({}), 0.0);
}

TEST(PerfStats, MedianResistsOutliers) {
  // One wild sample moves the mean but not the median.
  EXPECT_DOUBLE_EQ(perf::median({1.0, 2.0, 3.0, 4.0, 1e9}), 3.0);
}

TEST(PerfStats, MadAboutMedian) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 100.0};
  const double med = perf::median(v);
  EXPECT_DOUBLE_EQ(med, 3.0);
  // Deviations: 2 1 0 1 97 -> median 1.
  EXPECT_DOUBLE_EQ(perf::mad(v, med), 1.0);
  EXPECT_DOUBLE_EQ(perf::mad({}, 0.0), 0.0);
}

TEST(PerfStats, PercentileInterpolates) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(perf::percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(perf::percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(perf::percentile(v, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(perf::percentile({}, 50.0), 0.0);
}

TEST(PerfStats, BootstrapCiIsDeterministicPerSeed) {
  std::vector<double> v;
  for (int i = 0; i < 40; ++i) v.push_back(100.0 + (i % 7));
  const auto a = perf::bootstrap_median_ci(v, 42);
  const auto b = perf::bootstrap_median_ci(v, 42);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  EXPECT_LE(a.lo, a.hi);
  // The interval brackets the sample median.
  const double med = perf::median(v);
  EXPECT_LE(a.lo, med);
  EXPECT_GE(a.hi, med);
}

TEST(PerfStats, BootstrapDegenerateInputs) {
  const auto single = perf::bootstrap_median_ci({5.0}, 1);
  EXPECT_DOUBLE_EQ(single.lo, 5.0);
  EXPECT_DOUBLE_EQ(single.hi, 5.0);
  // A constant sample has a zero-width interval regardless of seed.
  const auto flat = perf::bootstrap_median_ci({3.0, 3.0, 3.0, 3.0}, 99);
  EXPECT_DOUBLE_EQ(flat.lo, 3.0);
  EXPECT_DOUBLE_EQ(flat.hi, 3.0);
  const auto empty = perf::bootstrap_median_ci({}, 1);
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 0.0);
}

TEST(PerfStats, SummarizeFillsEveryField) {
  const std::vector<double> v = {4.0, 2.0, 6.0, 8.0, 10.0};
  const auto s = perf::summarize(v, 7);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.mean, 6.0);
  EXPECT_DOUBLE_EQ(s.median, 6.0);
  EXPECT_DOUBLE_EQ(s.mad, 2.0);
  EXPECT_LE(s.ci.lo, s.ci.hi);
}

// --- timer ------------------------------------------------------------------

TEST(PerfTimer, ProducesRequestedRepeats) {
  perf::timing_options opts;
  opts.min_sample_ns = 1000;
  opts.repeats = 5;
  volatile std::uint64_t sink = 0;
  const auto r = perf::measure([&] { sink = sink + 1; }, opts);
  EXPECT_EQ(r.ns_per_iteration.size(), 5u);
  EXPECT_GE(r.iterations, 1u);
  for (const double ns : r.ns_per_iteration) EXPECT_GE(ns, 0.0);
}

TEST(PerfTimer, InvocationsCountEveryCall) {
  perf::timing_options opts;
  opts.min_sample_ns = 10'000;
  opts.repeats = 3;
  opts.warmup = 2;
  std::uint64_t calls = 0;
  const auto r = perf::measure([&] { ++calls; }, opts);
  // The timer's own ledger must agree exactly with the workload's, since
  // counter deltas are divided by it.
  EXPECT_EQ(r.invocations, calls);
  EXPECT_GE(r.invocations, opts.warmup + opts.repeats * r.iterations);
}

TEST(PerfTimer, CalibrationGrowsBatchForFastWork) {
  perf::timing_options opts;
  opts.min_sample_ns = 500'000;
  opts.repeats = 3;
  volatile std::uint64_t sink = 0;
  const auto r = perf::measure([&] { sink = sink + 1; }, opts);
  // A ~1ns workload needs far more than one iteration per 0.5ms batch.
  EXPECT_GT(r.iterations, 100u);
}

TEST(PerfTimer, RespectsMaxIterationsCap) {
  perf::timing_options opts;
  opts.min_sample_ns = std::uint64_t{1} << 62;  // unreachable target
  opts.repeats = 1;
  opts.max_iterations = 64;
  volatile std::uint64_t sink = 0;
  const auto r = perf::measure([&] { sink = sink + 1; }, opts);
  EXPECT_LE(r.iterations, 64u);
}

// --- env_info ---------------------------------------------------------------

TEST(PerfEnvInfo, ReportsToolchainAndThreads) {
  const auto env = perf::env_info("2026-01-01T00:00:00Z");
  EXPECT_FALSE(env.compiler.empty());
  EXPECT_NE(env.compiler, "unknown");
  EXPECT_FALSE(env.build_type.empty());
  EXPECT_GE(env.hardware_threads, 1u);
  EXPECT_EQ(env.timestamp, "2026-01-01T00:00:00Z");
}

TEST(PerfEnvInfo, JsonCarriesEveryField) {
  const auto env = perf::env_info("t0");
  const auto j = env.to_json();
  ASSERT_TRUE(j.is(json_value::kind::object));
  EXPECT_EQ(j.at("compiler").str, env.compiler);
  EXPECT_EQ(j.at("build_type").str, env.build_type);
  EXPECT_EQ(j.at("os").str, env.os);
  EXPECT_EQ(j.at("timestamp").str, "t0");
  EXPECT_DOUBLE_EQ(j.at("hardware_threads").num,
                   static_cast<double>(env.hardware_threads));
  // dump∘parse round trip through the bundled JSON layer.
  const auto back = telemetry::parse_json(telemetry::dump_json(j));
  EXPECT_EQ(telemetry::dump_json(back), telemetry::dump_json(j));
}

TEST(PerfEnvInfo, TimestampHelperLooksIso) {
  const std::string ts = perf::utc_timestamp();
  ASSERT_EQ(ts.size(), 20u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts.back(), 'Z');
}

// --- fit --------------------------------------------------------------------

std::vector<std::pair<double, double>> sweep(
    std::initializer_list<double> ns, double (*fn)(double)) {
  std::vector<std::pair<double, double>> out;
  for (const double n : ns) out.emplace_back(n, fn(n));
  return out;
}

TEST(PerfFit, QuadraticDataViolatesLinearBound) {
  const auto pts =
      sweep({64, 128, 256, 512, 1024}, +[](double n) { return n * n; });
  const auto r = perf::fit_against(pts, core::big_o::n());
  EXPECT_EQ(r.v, perf::verdict::violated);
  EXPECT_NEAR(r.exponent, 2.0, 0.05);
  EXPECT_NEAR(r.excess, 1.0, 0.05);
  EXPECT_GT(r.r2, 0.99);
}

TEST(PerfFit, NLogNDataConsistentWithNLogNBound) {
  const auto pts = sweep({64, 128, 256, 512, 1024},
                         +[](double n) { return n * std::log2(n); });
  const auto r = perf::fit_against(pts, core::big_o::power("n", 1, 1));
  EXPECT_EQ(r.v, perf::verdict::consistent);
  EXPECT_NEAR(r.excess, 0.0, 0.05);
}

TEST(PerfFit, ConstantSeriesConsistentWithConstantBound) {
  const auto pts =
      sweep({64, 128, 256, 512, 1024}, +[](double) { return 5.0; });
  const auto r = perf::fit_against(pts, core::big_o::one());
  EXPECT_EQ(r.v, perf::verdict::consistent);
  EXPECT_NEAR(r.exponent, 0.0, 1e-9);
  // A flat series is a perfect zero-slope fit, not a degenerate one.
  EXPECT_DOUBLE_EQ(r.r2, 1.0);
}

TEST(PerfFit, TooFewPointsIsInconclusive) {
  const auto r = perf::fit_against({{64, 1.0}, {4096, 64.0}}, core::big_o::n());
  EXPECT_EQ(r.v, perf::verdict::inconclusive);
  EXPECT_NE(r.detail.find("inconclusive"), std::string::npos);
}

TEST(PerfFit, NarrowSpanIsInconclusive) {
  // Three points but max(n) < 4·min(n): refuses to fit instead of passing.
  const auto pts =
      sweep({100, 150, 200}, +[](double n) { return n * n * n; });
  const auto r = perf::fit_against(pts, core::big_o::one());
  EXPECT_EQ(r.v, perf::verdict::inconclusive);
}

TEST(PerfFit, SeededNoiseNearBoundaryIsStable) {
  // Multiplicative noise around a clean n^1.2 series vs an O(n) bound with
  // tolerance 0.5: the underlying excess 0.2 must stay consistent for any
  // bounded noise realization; use the session seed to draw it.
  std::uint64_t state = check::default_seed();
  auto next_noise = [&state]() {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return 0.9 + 0.2 * (static_cast<double>(z % 1000) / 1000.0);
  };
  std::vector<std::pair<double, double>> pts;
  for (const double n : {64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0})
    pts.emplace_back(n, std::pow(n, 1.2) * next_noise());
  const auto r = perf::fit_against(pts, core::big_o::n(), 0.5);
  EXPECT_EQ(r.v, perf::verdict::consistent);
  EXPECT_NEAR(r.excess, 0.2, 0.15);
}

TEST(PerfFit, LoglogSlopeRecoversExponent) {
  const auto pts =
      sweep({16, 64, 256, 1024}, +[](double n) { return 3.0 * n * n * n; });
  EXPECT_NEAR(perf::loglog_slope(pts), 3.0, 1e-6);
}

// --- benchmark runner -------------------------------------------------------

TEST(PerfBenchmark, AttributesCountersPerIteration) {
  auto& reg = telemetry::registry::global();
  auto& ops = reg.get_counter("perftest.toy.ops");
  const std::uint64_t before = ops.value();

  perf::benchmark_def def;
  def.name = "perftest.toy";
  def.subsystem = "perftest";
  def.declared = core::big_o::n();
  def.sizes = {8, 32, 128, 512};
  def.counter_prefix = "perftest.toy.";
  def.setup = [&ops](std::size_t n) -> std::function<void()> {
    return [&ops, n] { ops.add(n); };
  };

  perf::timing_options opts;
  opts.min_sample_ns = 20'000;
  opts.repeats = 3;
  const auto r = perf::run_benchmark(def, opts, 42);

  ASSERT_EQ(r.sweep.size(), 4u);
  for (std::size_t i = 0; i < r.sweep.size(); ++i) {
    const auto& pt = r.sweep[i];
    EXPECT_EQ(pt.n, def.sizes[i]);
    // The workload adds exactly n per invocation, and the runner divides
    // the delta by the timer's invocation ledger — so the attributed
    // ops/iteration is exactly n, independent of calibration.
    EXPECT_DOUBLE_EQ(pt.prefix_ops, static_cast<double>(pt.n));
    EXPECT_EQ(pt.time_ns.count, opts.repeats);
  }
  EXPECT_EQ(r.fitted_on, "counters");
  EXPECT_EQ(r.fit.v, perf::verdict::consistent);
  EXPECT_NEAR(r.fit.exponent, 1.0, 1e-6);
  EXPECT_GT(ops.value(), before);
}

TEST(PerfBenchmark, FallsBackToTimeWithoutCounters) {
  perf::benchmark_def def;
  def.name = "perftest.uninstrumented";
  def.subsystem = "perftest";
  def.declared = core::big_o::n();
  def.sizes = {64, 256, 1024};
  def.setup = [](std::size_t n) -> std::function<void()> {
    return [n] {
      volatile double acc = 0;
      for (std::size_t i = 0; i < n; ++i) acc = acc + 1.0;
    };
  };
  perf::timing_options opts;
  opts.min_sample_ns = 50'000;
  opts.repeats = 3;
  const auto r = perf::run_benchmark(def, opts, 42);
  EXPECT_EQ(r.fitted_on, "time_ns");
  ASSERT_EQ(r.sweep.size(), 3u);
}

TEST(PerfBenchmark, RegistryFindsByName) {
  perf::bench_registry reg;
  perf::benchmark_def def;
  def.name = "a.b";
  reg.add(std::move(def));
  EXPECT_NE(reg.find("a.b"), nullptr);
  EXPECT_EQ(reg.find("a.c"), nullptr);
  EXPECT_EQ(reg.all().size(), 1u);
}

// --- report schema + regression gate ----------------------------------------

perf::benchmark_result toy_result(const std::string& name, double ops_scale,
                                  double time_scale) {
  perf::benchmark_result r;
  r.name = name;
  r.subsystem = "perftest";
  r.declared = "O(n)";
  r.counter_prefix = name + ".";
  r.fitted_on = "counters";
  r.fit.v = perf::verdict::consistent;
  r.fit.exponent = 1.0;
  r.fit.declared = "O(n)";
  for (const std::size_t n : {8u, 32u, 128u}) {
    perf::sweep_point pt;
    pt.n = n;
    pt.iterations = 100;
    const double t = time_scale * static_cast<double>(n);
    pt.time_ns = perf::summarize({t, t * 1.01, t * 0.99}, 1);
    pt.counters.emplace_back(name + ".ops",
                             ops_scale * static_cast<double>(n));
    pt.prefix_ops = ops_scale * static_cast<double>(n);
    r.sweep.push_back(std::move(pt));
  }
  return r;
}

TEST(PerfReport, JsonMatchesSchema) {
  const auto env = perf::env_info("t0");
  const auto doc = perf::report_json({toy_result("perftest.a", 1.0, 10.0)}, env);

  EXPECT_EQ(doc.at("schema").str, perf::kSchema);
  ASSERT_TRUE(doc.at("environment").is(json_value::kind::object));
  const auto& benches = doc.at("benchmarks");
  ASSERT_TRUE(benches.is(json_value::kind::array));
  ASSERT_EQ(benches.arr.size(), 1u);
  const auto& b = benches.arr[0];
  EXPECT_EQ(b.at("name").str, "perftest.a");
  EXPECT_EQ(b.at("declared").str, "O(n)");
  EXPECT_EQ(b.at("fit").at("verdict").str, "consistent");
  const auto& sweep0 = b.at("sweep").arr.at(0);
  EXPECT_DOUBLE_EQ(sweep0.at("n").num, 8.0);
  for (const char* key : {"count", "min", "max", "mean", "median", "mad",
                          "ci_lo", "ci_hi"})
    EXPECT_TRUE(sweep0.at("time_ns").has(key)) << key;
  EXPECT_TRUE(sweep0.at("counters").has("perftest.a.ops"));

  // The document survives the bundled JSON round trip byte-for-byte.
  const std::string rendered = telemetry::dump_json(doc);
  EXPECT_EQ(telemetry::dump_json(telemetry::parse_json(rendered)), rendered);
}

TEST(PerfReport, IdenticalReportsHaveNoRegressions) {
  const auto env = perf::env_info("t0");
  const auto doc = perf::report_json({toy_result("perftest.a", 1.0, 10.0)}, env);
  EXPECT_TRUE(perf::compare_reports(doc, doc).empty());
}

TEST(PerfReport, InflatedCountersTripTheGate) {
  const auto env = perf::env_info("t0");
  const auto base = perf::report_json({toy_result("perftest.a", 1.0, 10.0)}, env);
  const auto slow = perf::report_json({toy_result("perftest.a", 6.0, 10.0)}, env);
  const auto regs = perf::compare_reports(slow, base);
  ASSERT_FALSE(regs.empty());
  EXPECT_EQ(regs[0].what, "counter");
  EXPECT_EQ(regs[0].benchmark, "perftest.a");
  // Within tolerance (1.30 default): 1.2x growth passes.
  const auto mild = perf::report_json({toy_result("perftest.a", 1.2, 10.0)}, env);
  EXPECT_TRUE(perf::compare_reports(mild, base).empty());
}

TEST(PerfReport, MissingBenchmarkIsACoverageRegression) {
  const auto env = perf::env_info("t0");
  const auto base = perf::report_json(
      {toy_result("perftest.a", 1.0, 10.0), toy_result("perftest.b", 1.0, 10.0)},
      env);
  const auto cur = perf::report_json({toy_result("perftest.a", 1.0, 10.0)}, env);
  const auto regs = perf::compare_reports(cur, base);
  ASSERT_EQ(regs.size(), 1u);
  EXPECT_EQ(regs[0].what, "coverage");
  EXPECT_EQ(regs[0].benchmark, "perftest.b");
}

TEST(PerfReport, TimeGateUsesCiAgainstBaselineMedian) {
  const auto env = perf::env_info("t0");
  const auto base = perf::report_json({toy_result("perftest.a", 1.0, 10.0)}, env);
  // 6x slower wall time, same counters: only the time gate can see it.
  const auto slow = perf::report_json({toy_result("perftest.a", 1.0, 60.0)}, env);
  perf::gate_options gate;
  gate.time_ratio = 4.0;
  auto regs = perf::compare_reports(slow, base, gate);
  ASSERT_FALSE(regs.empty());
  EXPECT_EQ(regs[0].what, "time");
  // Counters-only mode ignores wall time entirely.
  gate.gate_time = false;
  EXPECT_TRUE(perf::compare_reports(slow, base, gate).empty());
  // 2x slower stays inside the 4x noise allowance.
  const auto mild = perf::report_json({toy_result("perftest.a", 1.0, 20.0)}, env);
  gate.gate_time = true;
  EXPECT_TRUE(perf::compare_reports(mild, base, gate).empty());
}

TEST(PerfReport, ViolatedFitIsARegression) {
  const auto env = perf::env_info("t0");
  auto bad = toy_result("perftest.a", 1.0, 10.0);
  bad.fit.v = perf::verdict::violated;
  bad.fit.detail = "outgrew its bound";
  const auto base = perf::report_json({toy_result("perftest.a", 1.0, 10.0)}, env);
  const auto cur = perf::report_json({bad}, env);
  const auto regs = perf::compare_reports(cur, base);
  ASSERT_FALSE(regs.empty());
  EXPECT_EQ(regs[0].what, "fit");
}

}  // namespace
