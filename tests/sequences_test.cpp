// Tests for the concept-constrained sequence algorithms, the concept-based
// overloading of sort, and the checked (entry/exit handler) layer.
#include <gtest/gtest.h>

#include <forward_list>
#include <list>
#include <random>
#include <vector>

#include "core/archetypes.hpp"
#include "sequences/checked.hpp"
#include "sequences/sort.hpp"

namespace cgp::sequences {
namespace {

// ---------------------------------------------------------------------------
// advance / distance dispatch
// ---------------------------------------------------------------------------

TEST(Advance, RandomAccessJumps) {
  std::vector<int> v{0, 1, 2, 3, 4};
  auto it = v.begin();
  cgp::sequences::advance(it, 3);
  EXPECT_EQ(*it, 3);
  cgp::sequences::advance(it, -2);
  EXPECT_EQ(*it, 1);
}

TEST(Advance, BidirectionalWalksBothWays) {
  std::list<int> l{0, 1, 2, 3, 4};
  auto it = l.begin();
  cgp::sequences::advance(it, 4);
  EXPECT_EQ(*it, 4);
  cgp::sequences::advance(it, -3);
  EXPECT_EQ(*it, 1);
}

TEST(Advance, TagDispatchAgreesWithConceptDispatch) {
  std::vector<int> v{0, 1, 2, 3, 4};
  auto a = v.begin();
  auto b = v.begin();
  cgp::sequences::advance(a, 4);
  cgp::sequences::advance_tagged(b, 4);
  EXPECT_EQ(a, b);
  std::list<int> l{0, 1, 2};
  auto c = l.begin();
  cgp::sequences::advance_tagged(c, 2);
  EXPECT_EQ(*c, 2);
}

TEST(Distance, WorksPerCategory) {
  std::vector<int> v{1, 2, 3};
  std::forward_list<int> f{1, 2, 3, 4};
  EXPECT_EQ(cgp::sequences::distance(v.begin(), v.end()), 3);
  EXPECT_EQ(cgp::sequences::distance(f.begin(), f.end()), 4);
}

// ---------------------------------------------------------------------------
// searches and folds
// ---------------------------------------------------------------------------

TEST(Find, FindsFirstOccurrence) {
  const std::vector<int> v{5, 3, 7, 3};
  EXPECT_EQ(cgp::sequences::find(v.begin(), v.end(), 3) - v.begin(), 1);
  EXPECT_EQ(cgp::sequences::find(v.begin(), v.end(), 9), v.end());
}

TEST(Reduce, MonoidConstrainedUsesDeclaredIdentity) {
  const std::vector<int> v{1, 2, 3, 4};
  EXPECT_EQ((reduce<std::plus<>>(v.begin(), v.end())), 10);
  EXPECT_EQ((reduce<std::multiplies<>>(v.begin(), v.end())), 24);
  const std::vector<unsigned> masks{0xF0u, 0xFFu, 0xF3u};
  EXPECT_EQ((reduce<std::bit_and<>>(masks.begin(), masks.end())), 0xF0u);
  const std::vector<std::string> words{"a", "b", "c"};
  EXPECT_EQ((reduce<std::plus<>>(words.begin(), words.end())), "abc");
}

// Compile-time rejection of non-associative operations: (int, -) is not a
// declared Monoid, so reduce must not be callable with std::minus.
template <class Op, class I>
concept reduce_callable = requires(I f, I l) { reduce<Op>(f, l); };
static_assert(
    reduce_callable<std::plus<>, std::vector<int>::const_iterator>);
static_assert(
    !reduce_callable<std::minus<>, std::vector<int>::const_iterator>);

TEST(Accumulate, ExplicitInit) {
  const std::vector<int> v{1, 2, 3};
  EXPECT_EQ(cgp::sequences::accumulate(v.begin(), v.end(), 100), 106);
}

TEST(MaxElement, FindsMaximum) {
  const std::list<int> l{3, 9, 2, 9, 4};
  auto it = cgp::sequences::max_element(l.begin(), l.end());
  EXPECT_EQ(*it, 9);
  EXPECT_EQ(cgp::sequences::distance(l.begin(), it), 1);  // first of ties
  EXPECT_EQ(cgp::sequences::max_element(l.end(), l.end()), l.end());
}

TEST(MaxElement, MultipassViolationCaughtByArchetype) {
  // Section 3.1: max_element depends on the Forward Iterator multipass
  // property; the single-pass semantic archetype exposes this dynamically.
  core::single_pass_sequence<int> stream({4, 7, 1});
  EXPECT_THROW((void)cgp::sequences::max_element(stream.begin(), stream.end()),
               core::semantic_archetype_violation);
}

TEST(Find, SinglePassIsEnoughForFind) {
  core::single_pass_sequence<int> stream({4, 7, 1});
  auto it = cgp::sequences::find(stream.begin(), stream.end(), 7);
  EXPECT_EQ(*it, 7);
}

// ---------------------------------------------------------------------------
// binary searches
// ---------------------------------------------------------------------------

TEST(LowerBound, AgreesWithLinearDefinitionOnVectors) {
  const std::vector<int> v{1, 3, 3, 5, 8, 13};
  for (int probe : {0, 1, 2, 3, 4, 5, 8, 13, 14}) {
    const auto expected =
        cgp::sequences::find_if(v.begin(), v.end(),
                                [&](int x) { return !(x < probe); });
    EXPECT_EQ(cgp::sequences::lower_bound(v.begin(), v.end(), probe),
              expected)
        << "probe " << probe;
  }
}

TEST(LowerBound, WorksOnForwardIterators) {
  const std::forward_list<int> f{1, 4, 4, 9};
  auto it = cgp::sequences::lower_bound(f.begin(), f.end(), 4);
  EXPECT_EQ(cgp::sequences::distance(f.begin(), it), 1);
}

TEST(BinarySearchAndEqualRange, Consistent) {
  const std::vector<int> v{1, 3, 3, 5, 8};
  EXPECT_TRUE(cgp::sequences::binary_search(v.begin(), v.end(), 3));
  EXPECT_FALSE(cgp::sequences::binary_search(v.begin(), v.end(), 4));
  const auto [lo, hi] = cgp::sequences::equal_range(v.begin(), v.end(), 3);
  EXPECT_EQ(lo - v.begin(), 1);
  EXPECT_EQ(hi - v.begin(), 3);
}

TEST(BinarySearch, LogarithmicComparisonCount) {
  // The complexity guarantee is part of the concept: audit it with the
  // counting strict-weak-order archetype.
  std::vector<int> v(1 << 14);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(2 * i);
  core::checked_strict_weak_order<int, std::less<>> cmp;
  (void)cgp::sequences::binary_search(v.begin(), v.end(), 12345,
                                      std::ref(cmp));
  // ~log2(16384) = 14 probes; each checked comparison costs 2 raw calls.
  EXPECT_LE(cmp.calls(), 40u);
}

// ---------------------------------------------------------------------------
// rotate / reverse / merge
// ---------------------------------------------------------------------------

TEST(Rotate, RotatesAndReturnsNewMiddle) {
  std::vector<int> v{1, 2, 3, 4, 5};
  const auto nm = cgp::sequences::rotate(v.begin(), v.begin() + 2, v.end());
  EXPECT_EQ(v, (std::vector<int>{3, 4, 5, 1, 2}));
  EXPECT_EQ(nm - v.begin(), 3);
}

TEST(Rotate, ForwardIteratorsOnly) {
  std::forward_list<int> f{1, 2, 3, 4};
  auto mid = f.begin();
  ++mid;
  (void)cgp::sequences::rotate(f.begin(), mid, f.end());
  EXPECT_EQ(f, (std::forward_list<int>{2, 3, 4, 1}));
}

TEST(Reverse, Works) {
  std::list<int> l{1, 2, 3, 4};
  cgp::sequences::reverse(l.begin(), l.end());
  EXPECT_EQ(l, (std::list<int>{4, 3, 2, 1}));
}

TEST(Merge, MergesSortedRanges) {
  const std::vector<int> a{1, 4, 6};
  const std::vector<int> b{2, 3, 7};
  std::vector<int> out(6);
  cgp::sequences::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 6, 7}));
}

// ---------------------------------------------------------------------------
// sort: concept-based overloading
// ---------------------------------------------------------------------------

TEST(Sort, SelectsAlgorithmByConcept) {
  EXPECT_EQ(sort_algorithm_for<std::vector<int>::iterator>(), "introsort");
  EXPECT_EQ(sort_algorithm_for<std::list<int>::iterator>(),
            "forward_merge_sort");
  EXPECT_EQ(sort_algorithm_for<std::forward_list<int>::iterator>(),
            "forward_merge_sort");
  EXPECT_EQ(sort_algorithm_for<int*>(), "introsort");
}

class SortProperty : public ::testing::TestWithParam<int> {};

TEST_P(SortProperty, IntrosortSortsRandomInput) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> d(-1000, 1000);
  std::uniform_int_distribution<int> len(0, 300);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> v(len(rng));
    for (int& x : v) x = d(rng);
    std::vector<int> expected = v;
    std::sort(expected.begin(), expected.end());
    cgp::sequences::sort(v.begin(), v.end());
    EXPECT_EQ(v, expected);
  }
}

TEST_P(SortProperty, ForwardMergeSortSortsListsAndForwardLists) {
  std::mt19937 rng(GetParam() + 1000);
  std::uniform_int_distribution<int> d(-50, 50);
  std::uniform_int_distribution<int> len(0, 120);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = len(rng);
    std::list<int> l;
    for (int i = 0; i < n; ++i) l.push_back(d(rng));
    std::vector<int> expected(l.begin(), l.end());
    std::sort(expected.begin(), expected.end());
    cgp::sequences::sort(l.begin(), l.end());
    EXPECT_TRUE(std::equal(l.begin(), l.end(), expected.begin(),
                           expected.end()));
  }
  std::forward_list<int> f{5, -2, 9, 0, 5, 1};
  cgp::sequences::sort(f.begin(), f.end());
  EXPECT_EQ(f, (std::forward_list<int>{-2, 0, 1, 5, 5, 9}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Sort, AdversarialPatternsStayNLogN) {
  // Already-sorted, reverse-sorted, all-equal, organ pipe: introsort must
  // handle the classic quicksort killers (via median-of-3 + heap fallback).
  const int n = 20000;
  std::vector<std::vector<int>> inputs;
  std::vector<int> sorted(n), reversed(n), equal(n, 7), pipe(n);
  for (int i = 0; i < n; ++i) {
    sorted[i] = i;
    reversed[i] = n - i;
    pipe[i] = std::min(i, n - i);
  }
  inputs = {sorted, reversed, equal, pipe};
  for (auto v : inputs) {
    std::vector<int> expected = v;
    std::sort(expected.begin(), expected.end());
    cgp::sequences::sort(v.begin(), v.end());
    EXPECT_EQ(v, expected);
  }
}

TEST(Sort, CustomStrictWeakOrder) {
  std::vector<int> v{3, -1, -7, 2};
  cgp::sequences::sort(v.begin(), v.end(), [](int a, int b) {
    return std::abs(a) < std::abs(b);
  });
  EXPECT_EQ(v, (std::vector<int>{-1, 2, 3, -7}));
}

TEST(BufferedMergeSort, Baseline) {
  std::vector<int> v{9, 1, 8, 2, 7, 3};
  buffered_merge_sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 7, 8, 9}));
}

// ---------------------------------------------------------------------------
// checked layer: entry/exit handlers
// ---------------------------------------------------------------------------

TEST(Checked, BinarySearchRejectsUnsortedRange) {
  std::vector<int> v{3, 1, 2};
  EXPECT_THROW((void)checked::binary_search(v.begin(), v.end(), 2),
               checked::precondition_violation);
}

TEST(Checked, BinarySearchAcceptsSortedRange) {
  std::vector<int> v{1, 2, 3};
  EXPECT_TRUE(checked::binary_search(v.begin(), v.end(), 2));
}

TEST(Checked, SortEstablishesPostconditionAndAuditsComparator) {
  std::vector<int> v{5, 2, 9, 2};
  checked::sort(v.begin(), v.end());
  EXPECT_TRUE(cgp::sequences::is_sorted(v.begin(), v.end()));
}

TEST(Checked, BrokenComparatorCaughtByArchetype) {
  // `<=` is not a strict weak order (not asymmetric on equal elements);
  // the checked layer's archetype flags it during the sort.
  std::vector<int> v{1, 1, 2, 2, 3, 3};
  EXPECT_THROW(checked::sort(v.begin(), v.end(),
                             [](int a, int b) { return a <= b; }),
               core::semantic_archetype_violation);
}

TEST(Checked, MaxElementRejectsEmptyRange) {
  std::vector<int> v;
  EXPECT_THROW((void)checked::max_element(v.begin(), v.end()),
               checked::precondition_violation);
}

}  // namespace
}  // namespace cgp::sequences
