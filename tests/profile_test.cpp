// Tests for the span-attributed deterministic profiler (DESIGN.md §11):
// frame interning, manual-clock inclusive/exclusive math, cross-thread
// merge-by-name, byte-identical cgp.prof.v1 exports, collapsed-stack and
// hot-table renderings, structural validation (and its rejections),
// cross-thread adoption via current_path/adopt_scope, thread-pool task
// attribution, profile diffing (perf::profile_diff), and the
// snapshot-while-probing race the tsan-profile preset hammers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "perf/profdiff.hpp"
#include "telemetry/export.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace cgp;
namespace profile = telemetry::profile;

// Every test drives the process-global profiler, so each starts from a
// known state: manual clock (deterministic ticks) and zeroed accumulators.
class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& p = profile::profiler::global();
    p.disable();
    p.set_manual_clock(true);
    p.reset();
  }
  void TearDown() override {
    auto& p = profile::profiler::global();
    p.disable();
    p.set_manual_clock(false);
    p.reset();
  }
};

const profile::profile_node* find_child(
    const std::vector<profile::profile_node>& nodes, const std::string& name) {
  for (const auto& n : nodes)
    if (n.name == name) return &n;
  return nullptr;
}

// ---------------------------------------------------------------------------
// interning
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, InternIsIdempotentAndNamesRoundTrip) {
  const auto a = profile::intern("profile_test.intern.a");
  const auto b = profile::intern("profile_test.intern.b");
  EXPECT_NE(a, b);
  EXPECT_EQ(profile::intern("profile_test.intern.a"), a);
  EXPECT_EQ(profile::frame_name(a), "profile_test.intern.a");
  EXPECT_EQ(profile::frame_name(b), "profile_test.intern.b");
  EXPECT_THROW((void)profile::frame_name(profile::kNoFrame),
               std::out_of_range);
}

// ---------------------------------------------------------------------------
// probe math (manual clock: every clock read is one tick)
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, DisabledProbesRecordNothing) {
  {
    profile::probe p(std::string_view("profile_test.disabled"));
    EXPECT_FALSE(p.recording());
  }
  {
    profile::probe p(profile::intern("profile_test.disabled.id"));
    EXPECT_FALSE(p.recording());
  }
  EXPECT_TRUE(profile::current_path().empty());
  const auto snap = profile::profiler::global().snapshot();
  EXPECT_TRUE(snap.roots.empty());
  EXPECT_EQ(snap.unit, "ticks");
}

TEST_F(ProfileTest, NestedProbesSplitInclusiveAndExclusive) {
  auto& p = profile::profiler::global();
  p.enable();
  {
    profile::probe outer(std::string_view("profile_test.outer"));
    EXPECT_TRUE(outer.recording());
    for (int i = 0; i < 2; ++i)
      profile::probe inner(std::string_view("profile_test.inner"));
  }
  p.disable();
  const auto snap = p.snapshot();
  const auto* outer = find_child(snap.roots, "profile_test.outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  const auto* inner = find_child(outer->children, "profile_test.inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2u);
  EXPECT_TRUE(inner->children.empty());
  // The tree invariant export/validation rely on, plus "time actually
  // passed everywhere" (each probe costs two clock reads ⇒ ≥1 tick).
  EXPECT_EQ(outer->incl, outer->excl + inner->incl);
  EXPECT_GT(inner->incl, 0u);
  EXPECT_GT(outer->excl, 0u);
  EXPECT_GE(inner->incl, inner->excl);
}

TEST_F(ProfileTest, ResetZeroesAccumulatorsButKeepsInternedIds) {
  auto& p = profile::profiler::global();
  const auto f = profile::intern("profile_test.reset.frame");
  p.enable();
  { profile::probe pr(f); }
  p.disable();
  ASSERT_FALSE(p.snapshot().roots.empty());
  p.reset();
  EXPECT_TRUE(p.snapshot().roots.empty());
  // The cached id survives the reset and records again.
  p.enable();
  { profile::probe pr(f); }
  p.disable();
  const auto snap = p.snapshot();
  ASSERT_EQ(snap.roots.size(), 1u);
  EXPECT_EQ(snap.roots[0].name, "profile_test.reset.frame");
  EXPECT_EQ(snap.roots[0].count, 1u);
}

// ---------------------------------------------------------------------------
// cross-thread merge and adoption
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, SnapshotMergesThreadsByName) {
  auto& p = profile::profiler::global();
  p.enable();
  auto work = [] {
    profile::probe root(std::string_view("profile_test.shared.root"));
    profile::probe leaf(std::string_view("profile_test.shared.leaf"));
  };
  std::thread t1(work);
  std::thread t2(work);
  t1.join();
  t2.join();
  p.disable();
  const auto snap = p.snapshot();
  // Two threads, one merged tree: aggregation keys on frame names, so the
  // per-thread trees collapse into a single path with count 2.
  const auto* root = find_child(snap.roots, "profile_test.shared.root");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->count, 2u);
  const auto* leaf = find_child(root->children, "profile_test.shared.leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->count, 2u);
  EXPECT_EQ(root->incl, root->excl + leaf->incl);
}

TEST_F(ProfileTest, AdoptScopeReRootsWorkerFramesUnderSubmitterPath) {
  auto& p = profile::profiler::global();
  p.enable();
  profile::call_path captured;
  {
    profile::probe submitter(std::string_view("profile_test.adopt.submitter"));
    captured = profile::current_path();
  }
  ASSERT_EQ(captured.size(), 1u);
  std::thread worker([&captured] {
    profile::adopt_scope adopt(captured);
    profile::probe leaf(std::string_view("profile_test.adopt.leaf"));
  });
  worker.join();
  p.disable();
  const auto snap = p.snapshot();
  const auto* submitter =
      find_child(snap.roots, "profile_test.adopt.submitter");
  ASSERT_NE(submitter, nullptr);
  // One timed invocation on the submitting thread; the worker-side
  // waypoint carries structure, not an extra count.
  EXPECT_EQ(submitter->count, 1u);
  const auto* leaf = find_child(submitter->children, "profile_test.adopt.leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->count, 1u);
  EXPECT_GT(leaf->incl, 0u);
  // Waypoint reconstruction: the parent's inclusive time absorbs the
  // adopted child's even though the child ran on another thread.
  EXPECT_EQ(submitter->incl, submitter->excl + leaf->incl);
  const auto doc = telemetry::parse_json(profile::export_json(snap));
  const auto v = profile::validate_profile(doc);
  EXPECT_TRUE(v.ok) << profile::export_json(snap);
}

TEST_F(ProfileTest, ThreadPoolTasksNestUnderSubmittingFrame) {
  auto& p = profile::profiler::global();
  p.enable();
  {
    profile::probe bench(std::string_view("profile_test.pool.parent"));
    parallel::thread_pool pool(2);
    pool.run_chunks(4, [](std::size_t) {
      profile::probe work(std::string_view("profile_test.pool.work"));
    });
  }
  p.disable();
  const auto snap = p.snapshot();
  const auto* parent = find_child(snap.roots, "profile_test.pool.parent");
  ASSERT_NE(parent, nullptr);
  const auto* chunks =
      find_child(parent->children, "parallel.thread_pool.run_chunks");
  ASSERT_NE(chunks, nullptr);
  const auto* task = find_child(chunks->children, "parallel.thread_pool.task");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->count, 4u);
  const auto* work = find_child(task->children, "profile_test.pool.work");
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(work->count, 4u);
  const auto doc = telemetry::parse_json(profile::export_json(snap));
  EXPECT_TRUE(profile::validate_profile(doc).ok);
}

// ---------------------------------------------------------------------------
// trace linkage
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, ProbesCountInvocationsUnderActiveTraces) {
  auto& p = profile::profiler::global();
  p.enable();
  {
    profile::probe untraced(std::string_view("profile_test.traced.frame"));
  }
  {
    telemetry::trace::trace_span span("profile_test.traced.span", "test");
    profile::probe traced(std::string_view("profile_test.traced.frame"));
    EXPECT_TRUE(traced.context().active());
    EXPECT_EQ(traced.context().trace_id, span.context().trace_id);
  }
  p.disable();
  const auto snap = p.snapshot();
  const auto* frame = find_child(snap.roots, "profile_test.traced.frame");
  ASSERT_NE(frame, nullptr);
  EXPECT_EQ(frame->count, 2u);
  EXPECT_EQ(frame->traced, 1u);
}

// ---------------------------------------------------------------------------
// exports: determinism, collapsed stacks, hot table, validation
// ---------------------------------------------------------------------------

namespace {
void run_canned_workload() {
  profile::probe a(std::string_view("profile_test.det.a"));
  for (int i = 0; i < 3; ++i) {
    profile::probe b(std::string_view("profile_test.det.b"));
    profile::probe c(std::string_view("profile_test.det.c"));
  }
  profile::probe d(std::string_view("profile_test.det.d"));
}
}  // namespace

TEST_F(ProfileTest, ManualClockExportIsByteIdenticalAcrossRuns) {
  auto& p = profile::profiler::global();
  std::vector<std::string> exports;
  for (int run = 0; run < 2; ++run) {
    p.reset();
    p.enable();
    run_canned_workload();
    p.disable();
    exports.push_back(profile::export_json(p.snapshot()));
  }
  EXPECT_EQ(exports[0], exports[1]);
  const auto doc = telemetry::parse_json(exports[0]);
  const auto v = profile::validate_profile(doc);
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.roots, 1u);
  EXPECT_EQ(v.nodes, 4u);  // a, a;b, a;b;c, a;d
  EXPECT_EQ(v.max_depth, 3u);
  EXPECT_EQ(doc.at("unit").str, "ticks");
}

TEST_F(ProfileTest, CollapsedStacksAreSortedSemicolonPaths) {
  auto& p = profile::profiler::global();
  p.enable();
  run_canned_workload();
  p.disable();
  const std::string folded = profile::collapsed(p.snapshot());
  // Every line is "path weight\n" with the path frames ';'-joined.
  EXPECT_NE(folded.find("profile_test.det.a;profile_test.det.b;"
                        "profile_test.det.c "),
            std::string::npos)
      << folded;
  EXPECT_NE(folded.find("profile_test.det.a;profile_test.det.d "),
            std::string::npos)
      << folded;
  // Lexicographic line order (flamegraph.pl does not care; diffing does).
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < folded.size()) {
    const std::size_t end = folded.find('\n', start);
    if (end == std::string::npos) break;  // collapsed() always ends in \n
    lines.push_back(folded.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_GE(lines.size(), 2u);
  for (std::size_t i = 1; i < lines.size(); ++i)
    EXPECT_LT(lines[i - 1], lines[i]);
}

TEST_F(ProfileTest, HotFramesRankBySummedExclusiveTime) {
  auto& p = profile::profiler::global();
  p.enable();
  run_canned_workload();
  p.disable();
  const auto snap = p.snapshot();
  const auto hot = profile::hot_frames(snap, 10);
  ASSERT_GE(hot.size(), 3u);
  for (std::size_t i = 1; i < hot.size(); ++i)
    EXPECT_GE(hot[i - 1].excl, hot[i].excl);
  // "b" encloses three "c" probes, so it accrues the most exclusive ticks.
  EXPECT_EQ(hot[0].name, "profile_test.det.b");
  EXPECT_EQ(hot[0].count, 3u);
  const std::string table = profile::render_hot_table(snap, 3);
  EXPECT_NE(table.find("profile_test.det.b"), std::string::npos) << table;
  // A truncated table still mentions every requested rank.
  EXPECT_NE(table.find(" 1. "), std::string::npos) << table;
  EXPECT_NE(table.find(" 3. "), std::string::npos) << table;
}

TEST_F(ProfileTest, ValidatorRejectsTamperedDocuments) {
  auto& p = profile::profiler::global();
  p.enable();
  run_canned_workload();
  p.disable();
  const std::string json = profile::export_json(p.snapshot());

  auto doc = telemetry::parse_json(json);
  ASSERT_TRUE(profile::validate_profile(doc).ok);

  // excl > incl on a leaf.
  auto tampered = telemetry::parse_json(json);
  tampered.obj["roots"].arr[0].obj["excl"].num =
      tampered.at("roots").arr[0].at("incl").num + 1.0;
  EXPECT_FALSE(profile::validate_profile(tampered).ok);

  // incl != excl + Σ children incl.
  auto broken_sum = telemetry::parse_json(json);
  broken_sum.obj["roots"].arr[0].obj["incl"].num += 100.0;
  EXPECT_FALSE(profile::validate_profile(broken_sum).ok);

  // Unsorted siblings.
  auto unsorted = telemetry::parse_json(json);
  auto& kids = unsorted.obj["roots"].arr[0].obj["children"].arr;
  ASSERT_EQ(kids.size(), 2u);
  std::swap(kids[0], kids[1]);
  EXPECT_FALSE(profile::validate_profile(unsorted).ok);

  // traced > count.
  auto overtraced = telemetry::parse_json(json);
  overtraced.obj["roots"].arr[0].obj["traced"].num =
      overtraced.at("roots").arr[0].at("count").num + 1.0;
  EXPECT_FALSE(profile::validate_profile(overtraced).ok);

  // Wrong recursive frame count.
  auto miscounted = telemetry::parse_json(json);
  miscounted.obj["frames"].num += 1.0;
  EXPECT_FALSE(profile::validate_profile(miscounted).ok);

  // Not a profile document at all.
  auto alien = telemetry::parse_json("{\"schema\":\"cgp.flight.v1\"}");
  EXPECT_FALSE(profile::validate_profile(alien).ok);
}

// ---------------------------------------------------------------------------
// profile diff (perf::profile_diff)
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, ProfileDiffClassifiesGrownShrunkNewVanished) {
  auto& p = profile::profiler::global();

  p.reset();
  p.enable();
  {
    profile::probe a(std::string_view("diff.a"));
    { profile::probe b(std::string_view("diff.b")); }
    { profile::probe gone(std::string_view("diff.gone")); }
  }
  p.disable();
  const auto before = telemetry::parse_json(profile::export_json(p.snapshot()));

  p.reset();
  p.enable();
  {
    profile::probe a(std::string_view("diff.a"));
    // "diff.b" runs 5× as often (grown); "diff.gone" vanished;
    // "diff.fresh" is new.
    for (int i = 0; i < 5; ++i) profile::probe b(std::string_view("diff.b"));
    { profile::probe fresh(std::string_view("diff.fresh")); }
  }
  p.disable();
  const auto after = telemetry::parse_json(profile::export_json(p.snapshot()));

  const auto d = perf::profile_diff(before, after);
  ASSERT_TRUE(d.ok) << perf::render_profile_diff(d, 10);
  EXPECT_EQ(d.unit, "ticks");
  ASSERT_FALSE(d.deltas.empty());
  // Sorted by |delta| descending.
  for (std::size_t i = 1; i < d.deltas.size(); ++i)
    EXPECT_GE(std::abs(d.deltas[i - 1].delta), std::abs(d.deltas[i].delta));
  bool saw_grown = false, saw_new = false, saw_vanished = false;
  for (const auto& fd : d.deltas) {
    if (fd.path == "diff.a;diff.b") {
      EXPECT_EQ(fd.status, "grown");
      EXPECT_GT(fd.delta, 0.0);
      EXPECT_EQ(fd.count_before, 1u);
      EXPECT_EQ(fd.count_after, 5u);
      saw_grown = true;
    }
    if (fd.path == "diff.a;diff.fresh") {
      EXPECT_EQ(fd.status, "new");
      saw_new = true;
    }
    if (fd.path == "diff.a;diff.gone") {
      EXPECT_EQ(fd.status, "vanished");
      EXPECT_LT(fd.delta, 0.0);
      saw_vanished = true;
    }
  }
  EXPECT_TRUE(saw_grown);
  EXPECT_TRUE(saw_new);
  EXPECT_TRUE(saw_vanished);
  const std::string rendered = perf::render_profile_diff(d, 10);
  EXPECT_NE(rendered.find("grown"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("diff.a;diff.b"), std::string::npos) << rendered;
}

TEST_F(ProfileTest, ProfileDiffRejectsUnitMismatchAndInvalidDocs) {
  auto& p = profile::profiler::global();
  p.enable();
  { profile::probe a(std::string_view("diff.unit.a")); }
  p.disable();
  const std::string json = profile::export_json(p.snapshot());
  auto ticks_doc = telemetry::parse_json(json);
  auto ns_doc = telemetry::parse_json(json);
  ns_doc.obj["unit"].str = "ns";
  const auto mismatch = perf::profile_diff(ticks_doc, ns_doc);
  EXPECT_FALSE(mismatch.ok);
  auto alien = telemetry::parse_json("{\"schema\":\"nope\"}");
  EXPECT_FALSE(perf::profile_diff(ticks_doc, alien).ok);
  EXPECT_FALSE(perf::profile_diff(alien, ticks_doc).ok);
}

// ---------------------------------------------------------------------------
// races (the tsan-profile preset runs this suite under ThreadSanitizer)
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, SnapshotWhileProbingIsSafe) {
  auto& p = profile::profiler::global();
  p.enable();
  std::thread prober([] {
    for (int i = 0; i < 2000; ++i) {
      profile::probe outer(std::string_view("profile_test.race.outer"));
      profile::probe inner(std::string_view("profile_test.race.inner"));
    }
  });
  for (int i = 0; i < 50; ++i) {
    const auto snap = profile::profiler::global().snapshot();
    (void)profile::collapsed(snap);
    (void)profile::export_json(snap);
  }
  prober.join();
  p.disable();
  // Quiescent now: the final export must be structurally sound.
  const auto doc =
      telemetry::parse_json(profile::export_json(p.snapshot()));
  const auto v = profile::validate_profile(doc);
  EXPECT_TRUE(v.ok) << (v.errors.empty() ? "" : v.errors.front());
}

}  // namespace
