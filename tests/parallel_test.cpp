// Tests for the data-parallel library: thread pool, Monoid-constrained
// reduce/scan, and parallel sort.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>

#include "parallel/algorithms.hpp"

namespace cgp::parallel {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  thread_pool pool(4);
  std::atomic<int> counter{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&] {
      counter.fetch_add(1);
      done.fetch_add(1);
    });
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, RunChunksBlocksUntilComplete) {
  thread_pool pool(3);
  std::vector<int> hits(17, 0);
  pool.run_chunks(17, [&](std::size_t c) { hits[c] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 17);
}

TEST(ThreadPool, RunChunksPropagatesExceptions) {
  thread_pool pool(2);
  EXPECT_THROW(pool.run_chunks(8,
                               [&](std::size_t c) {
                                 if (c == 5)
                                   throw std::runtime_error("boom");
                               }),
               std::runtime_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  thread_pool pool(4);
  std::vector<std::atomic<int>> hits(50000);
  parallel_for(
      hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTransform, MatchesSerial) {
  thread_pool pool(4);
  std::vector<int> in(30000);
  std::iota(in.begin(), in.end(), 0);
  std::vector<long> out(in.size());
  parallel_transform(in.begin(), in.end(), out.begin(),
                     [](int x) { return static_cast<long>(x) * x; }, pool);
  for (std::size_t i = 0; i < in.size(); ++i)
    EXPECT_EQ(out[i], static_cast<long>(i) * static_cast<long>(i));
}

TEST(ParallelReduce, MatchesSerialSum) {
  thread_pool pool(4);
  std::vector<int> v(100001);
  std::iota(v.begin(), v.end(), -50000);
  const int expected = std::accumulate(v.begin(), v.end(), 0);
  EXPECT_EQ((parallel_reduce<std::plus<>>(v.begin(), v.end(), {}, pool)),
            expected);
}

TEST(ParallelReduce, NonCommutativeMonoidIsDeterministic) {
  // String concatenation is associative but NOT commutative: chunk results
  // combined in index order must reproduce the serial concatenation.
  thread_pool pool(4);
  std::vector<std::string> v;
  for (int i = 0; i < 5000; ++i) v.push_back(std::to_string(i % 10));
  std::string expected;
  for (const auto& s : v) expected += s;
  EXPECT_EQ((parallel_reduce<std::plus<>>(v.begin(), v.end(), {}, pool)),
            expected);
}

TEST(ParallelReduce, BitwiseMonoids) {
  thread_pool pool(4);
  std::vector<unsigned> v(40000, 0xFFFFFFFFu);
  v[12345] = 0x0000FF00u;
  EXPECT_EQ((parallel_reduce<std::bit_and<>>(v.begin(), v.end(), {}, pool)),
            0x0000FF00u);
}

// Compile-time rejection: subtraction is not a Monoid.
template <class Op, class I>
concept preduce_callable =
    requires(I f, I l) { parallel_reduce<Op>(f, l); };
static_assert(
    preduce_callable<std::plus<>, std::vector<int>::const_iterator>);
static_assert(
    !preduce_callable<std::minus<>, std::vector<int>::const_iterator>);

class ScanProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanProperty, InclusiveScanMatchesSerialPrefixSums) {
  thread_pool pool(4);
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> d(-9, 9);
  std::vector<int> v(GetParam());
  for (int& x : v) x = d(rng);
  std::vector<int> expected(v.size());
  std::partial_sum(v.begin(), v.end(), expected.begin());
  std::vector<int> out(v.size());
  parallel_inclusive_scan<std::plus<>>(v.begin(), v.end(), out.begin(), {},
                                       pool);
  EXPECT_EQ(out, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanProperty,
                         ::testing::Values(0u, 1u, 2u, 1023u, 1024u, 1025u,
                                           20000u, 100001u));

TEST(ParallelSort, MatchesSerialSort) {
  thread_pool pool(4);
  std::mt19937 rng(123);
  std::uniform_int_distribution<int> d(-100000, 100000);
  std::vector<int> v(200000);
  for (int& x : v) x = d(rng);
  std::vector<int> expected = v;
  std::sort(expected.begin(), expected.end());
  parallel_sort(v.begin(), v.end(), std::less<>{}, pool);
  EXPECT_EQ(v, expected);
}

TEST(ParallelSort, SmallAndEdgeSizes) {
  thread_pool pool(4);
  for (std::size_t n : {0u, 1u, 2u, 3u, 4095u, 4096u, 4097u, 10000u}) {
    std::mt19937 rng(n);
    std::uniform_int_distribution<int> d(0, 50);
    std::vector<int> v(n);
    for (int& x : v) x = d(rng);
    std::vector<int> expected = v;
    std::sort(expected.begin(), expected.end());
    parallel_sort(v.begin(), v.end(), std::less<>{}, pool);
    EXPECT_EQ(v, expected) << "n=" << n;
  }
}

TEST(ParallelSort, CustomComparator) {
  thread_pool pool(2);
  std::vector<int> v(50000);
  std::iota(v.begin(), v.end(), 0);
  parallel_sort(v.begin(), v.end(), std::greater<>{}, pool);
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_GE(v[i - 1], v[i]);
}

// ---------------------------------------------------------------------------
// telemetry wiring
// ---------------------------------------------------------------------------

TEST(PoolTelemetry, SubmittedEqualsCompletedAndQueueDrains) {
  auto& reg = cgp::telemetry::registry::global();
  const auto submitted_before =
      reg.get_counter("parallel.thread_pool.tasks_submitted").value();
  const auto completed_before =
      reg.get_counter("parallel.thread_pool.tasks_completed").value();
  {
    thread_pool pool(3);
    std::atomic<int> hits{0};
    pool.run_chunks(24, [&hits](std::size_t) { ++hits; });
    EXPECT_EQ(hits.load(), 24);
  }  // pool destruction joins workers: every submitted task has completed
  const auto submitted =
      reg.get_counter("parallel.thread_pool.tasks_submitted").value() -
      submitted_before;
  const auto completed =
      reg.get_counter("parallel.thread_pool.tasks_completed").value() -
      completed_before;
  EXPECT_EQ(submitted, 24u);
  EXPECT_EQ(completed, submitted);
  EXPECT_EQ(reg.get_gauge("parallel.thread_pool.queue_depth").value(), 0);
  // Per-task latency histogram saw every task of this (and any earlier) run.
  EXPECT_GE(reg.get_histogram("parallel.thread_pool.task_us").count(),
            completed);
}

TEST(PoolTelemetry, UtilizationIsAFraction) {
  thread_pool pool(2);
  pool.run_chunks(8, [](std::size_t) {
    volatile long x = 0;
    for (int i = 0; i < 100000; ++i) x = x + i;
  });
  const double u = pool.utilization();
  EXPECT_GE(u, 0.0);
  EXPECT_LE(u, 1.0);
}

}  // namespace
}  // namespace cgp::parallel
