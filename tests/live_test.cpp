// Tests for the live observability layer: the flight recorder's overwrite
// ring and dump validation, watchdog stall semantics (busy/idle, one
// verdict per episode, weak-registration pruning, callbacks), manual-clock
// sampler determinism (byte-identical cgp.live.v1 exports across runs),
// series content (counter deltas vs gauge levels), Prometheus exposition,
// and the shutdown races the tsan preset hammers (start/stop/start,
// sample-during-export).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "distributed/inproc_transport.hpp"
#include "distributed/network.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/env_info.hpp"
#include "telemetry/export.hpp"
#include "telemetry/live.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/watchdog.hpp"

namespace {

using namespace cgp;
namespace live = telemetry::live;

// ---------------------------------------------------------------------------
// flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, OverwritesOldestAndCountsTotals) {
  live::flight_recorder fr(4);
  for (int i = 0; i < 6; ++i)
    fr.note(live::flight_entry::kind::marker, "e" + std::to_string(i),
            static_cast<double>(i));
  EXPECT_EQ(fr.recorded(), 6u);
  EXPECT_EQ(fr.overwritten(), 2u);
  const auto entries = fr.snapshot();
  ASSERT_EQ(entries.size(), 4u);
  // Oldest-first, and the two oldest notes were overwritten.
  EXPECT_EQ(entries.front().name, "e2");
  EXPECT_EQ(entries.back().name, "e5");
}

TEST(FlightRecorderTest, DumpRoundTripsAndValidates) {
  live::flight_recorder fr(16);
  fr.note(live::flight_entry::kind::span, "a.span", 12.0);
  fr.note(live::flight_entry::kind::counter, "a.counter", 3.0);
  fr.note(live::flight_entry::kind::watchdog, "a.worker", 99.0, "stall");
  fr.note(live::flight_entry::kind::marker, "note");
  const auto doc = telemetry::parse_json(fr.dump_json());
  const auto v = live::validate_flight_dump(doc);
  EXPECT_TRUE(v.ok) << v.error_text();
  EXPECT_EQ(v.entries, 4u);
  EXPECT_EQ(v.spans, 1u);
  EXPECT_EQ(v.counters, 1u);
  EXPECT_EQ(v.watchdog_verdicts, 1u);
  EXPECT_EQ(v.markers, 1u);
  // dump -> parse -> dump is a fixed point through the bundled JSON layer.
  const std::string dumped = telemetry::dump_json(doc);
  EXPECT_EQ(telemetry::dump_json(telemetry::parse_json(dumped)), dumped);
}

TEST(FlightRecorderTest, ValidatorRejectsIncoherentTotals) {
  live::flight_recorder fr(8);
  fr.note(live::flight_entry::kind::marker, "x");
  auto doc = telemetry::parse_json(fr.dump_json());
  doc.obj["recorded"].num = 0.0;  // totals no longer match the entry count
  const auto v = live::validate_flight_dump(doc);
  EXPECT_FALSE(v.ok);
}

TEST(FlightRecorderTest, ValidatorRejectsNonMonotoneSeq) {
  live::flight_recorder fr(8);
  fr.note(live::flight_entry::kind::marker, "a");
  fr.note(live::flight_entry::kind::marker, "b");
  auto doc = telemetry::parse_json(fr.dump_json());
  ASSERT_EQ(doc.at("entries").arr.size(), 2u);
  // Duplicate seq: two writers "tearing" the ring must be caught.
  doc.obj["entries"].arr[1].obj["seq"].num =
      doc.at("entries").arr[0].at("seq").num;
  EXPECT_FALSE(live::validate_flight_dump(doc).ok);
  // Missing seq entirely is a schema violation too.
  auto doc2 = telemetry::parse_json(fr.dump_json());
  doc2.obj["entries"].arr[0].obj.erase("seq");
  EXPECT_FALSE(live::validate_flight_dump(doc2).ok);
}

// Satellite regression (tsan-live hammers this): N writer threads keep
// appending while the main thread dumps.  Every mid-flight dump and the
// final quiescent dump must parse and validate — in particular the seq
// stamps must stay strictly increasing, proving note() never tears an
// entry across the overwrite ring under contention.
TEST(FlightRecorderTest, ConcurrentWritersDumpValidates) {
  live::flight_recorder fr(64);
  constexpr int kWriters = 4;
  constexpr int kNotesPerWriter = 500;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w)
    writers.emplace_back([&fr, w] {
      for (int i = 0; i < kNotesPerWriter; ++i) {
        const auto k = i % 2 == 0 ? live::flight_entry::kind::span
                                  : live::flight_entry::kind::marker;
        fr.note(k, "w" + std::to_string(w) + ".n" + std::to_string(i),
                static_cast<double>(i));
      }
    });
  for (int i = 0; i < 25; ++i) {
    const auto doc = telemetry::parse_json(fr.dump_json());
    const auto v = live::validate_flight_dump(doc);
    EXPECT_TRUE(v.ok) << v.error_text();
  }
  for (std::thread& t : writers) t.join();
  const auto doc = telemetry::parse_json(fr.dump_json());
  const auto v = live::validate_flight_dump(doc);
  EXPECT_TRUE(v.ok) << v.error_text();
  EXPECT_EQ(v.entries, 64u);
  EXPECT_EQ(fr.recorded(),
            static_cast<std::uint64_t>(kWriters * kNotesPerWriter));
}

TEST(FlightRecorderTest, ClearEmptiesRingAndTotals) {
  live::flight_recorder fr(4);
  fr.note(live::flight_entry::kind::marker, "x");
  fr.clear();
  EXPECT_EQ(fr.recorded(), 0u);
  EXPECT_TRUE(fr.snapshot().empty());
}

// ---------------------------------------------------------------------------
// watchdog
// ---------------------------------------------------------------------------

TEST(WatchdogTest, FlagsBusySilentParticipantOncePerEpisode) {
  live::watchdog wd;
  auto hb = wd.register_heartbeat("test.worker");
  hb->begin_work();
  hb->beat_at(100);
  // Budget is miss_threshold * period = 20ms of silence while busy.
  EXPECT_EQ(wd.check(115, 10, 2), 0u);  // within budget
  EXPECT_EQ(wd.check(125, 10, 2), 1u);  // flagged
  EXPECT_EQ(wd.check(200, 10, 2), 0u);  // same episode: no second verdict
  const auto stalls = wd.stalls();
  ASSERT_EQ(stalls.size(), 1u);
  EXPECT_EQ(stalls[0].participant, "test.worker");
  EXPECT_EQ(stalls[0].last_beat_ms, 100u);
  EXPECT_EQ(stalls[0].detected_at_ms, 125u);
  EXPECT_EQ(stalls[0].silent_ms, 25u);
  // Completing the unit of work ends the episode; a fresh silent busy
  // stretch earns a fresh verdict.
  hb->end_work();
  hb->begin_work();
  hb->beat_at(300);
  EXPECT_EQ(wd.check(330, 10, 2), 1u);
  EXPECT_EQ(wd.stall_count(), 2u);
}

TEST(WatchdogTest, IdleSilenceIsHealthy) {
  live::watchdog wd;
  auto hb = wd.register_heartbeat("test.idler");
  hb->beat_at(0);  // idle (never begin_work), silent forever
  EXPECT_EQ(wd.check(1000000, 10, 2), 0u);
  EXPECT_EQ(wd.stall_count(), 0u);
}

TEST(WatchdogTest, DroppedRegistrationsPrune) {
  live::watchdog wd;
  auto hb = wd.register_heartbeat("test.transient");
  EXPECT_EQ(wd.heartbeat_count(), 1u);
  hb.reset();  // owner is gone; the watchdog only held a weak_ptr
  EXPECT_EQ(wd.check(100, 10, 2), 0u);
  EXPECT_EQ(wd.heartbeat_count(), 0u);
}

TEST(WatchdogTest, CallbackFiresPerVerdict) {
  live::watchdog wd;
  std::vector<live::stall_event> seen;
  wd.on_stall([&seen](const live::stall_event& ev) { seen.push_back(ev); });
  auto hb = wd.register_heartbeat("test.cb");
  hb->begin_work();
  hb->beat_at(50);
  (void)wd.check(100, 10, 2);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].participant, "test.cb");
  EXPECT_EQ(seen[0].silent_ms, 50u);
}

// ---------------------------------------------------------------------------
// manual-clock sampler: determinism and series content
// ---------------------------------------------------------------------------

std::string manual_run_export() {
  auto& reg = telemetry::registry::global();
  reg.reset();
  live::sampler s({.period_ms = 10, .capacity = 16, .watch = false});
  auto& c = reg.get_counter("live_test.counter");
  auto& g = reg.get_gauge("live_test.gauge");
  auto& h = reg.get_histogram("live_test.hist");
  for (int t = 0; t < 5; ++t) {
    c.add(3);
    g.set(t);
    h.record(static_cast<std::uint64_t>(t) * 7 + 1);
    s.sample_at(static_cast<std::uint64_t>(t) * 10);
  }
  return s.export_json();
}

TEST(LiveSamplerTest, ManualClockExportIsByteIdenticalAcrossRuns) {
  // The CGP_CHECK_SEED replay contract for the live layer: with the clock
  // injected and the registry reset, two identical runs must serialize to
  // byte-identical cgp.live.v1 documents.
  const std::string first = manual_run_export();
  const std::string second = manual_run_export();
  EXPECT_EQ(first, second);
  const auto v = live::validate_live_export(telemetry::parse_json(first));
  EXPECT_TRUE(v.ok) << v.error_text();
}

TEST(LiveSamplerTest, SeriesCarryCounterDeltasAndGaugeLevels) {
  const auto doc = telemetry::parse_json(manual_run_export());
  const live::series_view* found = nullptr;
  std::vector<live::series_view> views;
  for (const auto& s : doc.at("series").arr) {
    live::series_view v;
    v.name = s.at("name").str;
    v.kind = s.at("kind").str;
    for (const auto& p : s.at("points").arr)
      v.points.push_back({static_cast<std::uint64_t>(p.at("t_ms").num),
                          p.at("v").num});
    views.push_back(std::move(v));
  }
  const auto find = [&](const std::string& name) -> const live::series_view* {
    for (const auto& v : views)
      if (v.name == name) return &v;
    return nullptr;
  };
  // Counter series hold per-period deltas (steady +3 per tick).
  found = find("live_test.counter");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->kind, "counter_delta");
  ASSERT_EQ(found->points.size(), 5u);
  for (const auto& p : found->points) EXPECT_EQ(p.value, 3.0);
  EXPECT_EQ(found->points[0].t_ms, 0u);
  EXPECT_EQ(found->points[4].t_ms, 40u);
  // Gauge series hold levels (0..4).
  found = find("live_test.gauge");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->kind, "gauge");
  ASSERT_EQ(found->points.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(found->points[i].value, static_cast<double>(i));
  // Histograms stream their totals as two delta series.
  found = find("live_test.hist.count");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->kind, "hist_count_delta");
  for (const auto& p : found->points) EXPECT_EQ(p.value, 1.0);
  EXPECT_NE(find("live_test.hist.sum"), nullptr);
}

TEST(LiveSamplerTest, RingRetainsOnlyNewestPointsWithinCapacity) {
  auto& reg = telemetry::registry::global();
  reg.reset();
  live::sampler s({.period_ms = 10, .capacity = 4, .watch = false});
  auto& c = reg.get_counter("live_test.ring_counter");
  for (int t = 0; t < 10; ++t) {
    c.add(static_cast<std::uint64_t>(t) + 1);
    s.sample_at(static_cast<std::uint64_t>(t) * 10);
  }
  for (const auto& v : s.series()) {
    if (v.name != "live_test.ring_counter") continue;
    EXPECT_EQ(v.total_points, 10u);
    ASSERT_EQ(v.points.size(), 4u);  // capacity-bounded
    // Oldest retained point is tick 6 (delta 7 at t=60).
    EXPECT_EQ(v.points.front().t_ms, 60u);
    EXPECT_EQ(v.points.front().value, 7.0);
    EXPECT_EQ(v.points.back().t_ms, 90u);
    EXPECT_EQ(v.points.back().value, 10.0);
    return;
  }
  FAIL() << "series live_test.ring_counter not found";
}

TEST(LiveSamplerTest, PrometheusExpositionExposesCumulativeValues) {
  auto& reg = telemetry::registry::global();
  reg.reset();
  live::sampler s({.period_ms = 10, .capacity = 8, .watch = false});
  reg.get_counter("live_test.prom.requests").add(41);
  reg.get_gauge("live_test.prom.depth").set(-3);
  s.sample_at(0);
  reg.get_counter("live_test.prom.requests").add(1);
  s.sample_at(10);
  const std::string prom = s.export_prometheus();
  EXPECT_NE(
      prom.find("# TYPE cgp_live_test_prom_requests counter\n"
                "cgp_live_test_prom_requests{metric=\"live_test.prom.requests"
                "\"} 42\n"),
      std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE cgp_live_test_prom_depth gauge\n"
                      "cgp_live_test_prom_depth{metric=\"live_test.prom.depth"
                      "\"} -3\n"),
            std::string::npos)
      << prom;
}

namespace {

std::size_t count_occurrences(const std::string& hay, const std::string& ndl) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(ndl); pos != std::string::npos;
       pos = hay.find(ndl, pos + ndl.size()))
    ++n;
  return n;
}

}  // namespace

// Exposition-format conformance: label values escape backslash, double
// quote, and newline; sanitization collisions share ONE # TYPE line per
// family (untyped when the colliding members disagree on kind) while the
// {metric="..."} label keeps the underlying series distinct.
TEST(LiveSamplerTest, PrometheusExpositionEscapesLabelsAndGroupsFamilies) {
  auto& reg = telemetry::registry::global();
  reg.reset();
  live::sampler s({.period_ms = 10, .capacity = 8, .watch = false});
  reg.get_counter("live_test.prom.esc\\back\"quote\nline").add(5);
  reg.get_counter("live_test.prom.col.x").add(1);
  reg.get_counter("live_test.prom.col:x").add(2);
  reg.get_counter("live_test.prom.mix.a").add(3);
  reg.get_gauge("live_test.prom.mix:a").set(4);
  s.sample_at(0);
  const std::string prom = s.export_prometheus();
  // Escaping: the raw name's \, ", and newline arrive as \\, \", \n.
  EXPECT_NE(prom.find("{metric=\"live_test.prom.esc\\\\back\\\"quote"
                      "\\nline\"} 5"),
            std::string::npos)
      << prom;
  // No raw newline may survive inside a label value (every line must be a
  // comment, a sample, or blank — an unescaped break would split one).
  EXPECT_EQ(prom.find("quote\nline"), std::string::npos) << prom;
  // Same-kind collision: one TYPE line, both series present under labels.
  EXPECT_EQ(count_occurrences(prom, "# TYPE cgp_live_test_prom_col_x "), 1u)
      << prom;
  EXPECT_NE(prom.find("# TYPE cgp_live_test_prom_col_x counter\n"
                      "cgp_live_test_prom_col_x{metric=\"live_test.prom.col."
                      "x\"} 1\n"
                      "cgp_live_test_prom_col_x{metric=\"live_test.prom.col:"
                      "x\"} 2\n"),
            std::string::npos)
      << prom;
  // Mixed-kind collision: the family degrades to untyped.
  EXPECT_EQ(count_occurrences(prom, "# TYPE cgp_live_test_prom_mix_a "), 1u)
      << prom;
  EXPECT_NE(prom.find("# TYPE cgp_live_test_prom_mix_a untyped\n"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("cgp_live_test_prom_mix_a{metric=\"live_test.prom.mix."
                      "a\"} 3\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("cgp_live_test_prom_mix_a{metric=\"live_test.prom.mix:"
                      "a\"} 4\n"),
            std::string::npos)
      << prom;
  // Every # TYPE name appears exactly once across the whole document.
  EXPECT_EQ(count_occurrences(prom, "# TYPE cgp_live_test_prom_esc"), 1u)
      << prom;
}

// Exposition-format conformance for registered log2 histograms: one
// `# TYPE ... histogram` family per histogram with CUMULATIVE
// `_bucket{le="..."}` series (each le is the bucket's inclusive upper
// value bound, 2^i - 1), a `+Inf` bucket equal to the observation count,
// and `_sum` / `_count` samples.  Values 1, 3, 3, 100 land in buckets
// with bounds 1, 3, and 127, so the cumulative walk is 1 -> 3 -> 4.
TEST(LiveSamplerTest, PrometheusHistogramFamiliesConform) {
  auto& reg = telemetry::registry::global();
  reg.reset();
  live::sampler s({.period_ms = 10, .capacity = 8, .watch = false});
  auto& h = reg.get_histogram("live_test.promh.latency");
  h.record(1);
  h.record(3);
  h.record(3);
  h.record(100);
  s.sample_at(0);
  const std::string prom = s.export_prometheus();
  EXPECT_EQ(count_occurrences(prom,
                              "# TYPE cgp_live_test_promh_latency histogram"),
            1u)
      << prom;
  const std::string label = "{metric=\"live_test.promh.latency\"";
  EXPECT_NE(prom.find("cgp_live_test_promh_latency_bucket" + label +
                      ",le=\"1\"} 1\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("cgp_live_test_promh_latency_bucket" + label +
                      ",le=\"3\"} 3\n"),
            std::string::npos)
      << prom;
  // Empty buckets up to the max nonzero one still appear (a Prometheus
  // histogram's cumulative series has no holes).
  EXPECT_NE(prom.find("cgp_live_test_promh_latency_bucket" + label +
                      ",le=\"63\"} 3\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("cgp_live_test_promh_latency_bucket" + label +
                      ",le=\"127\"} 4\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("cgp_live_test_promh_latency_bucket" + label +
                      ",le=\"+Inf\"} 4\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("cgp_live_test_promh_latency_sum" + label + "} 107\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("cgp_live_test_promh_latency_count" + label + "} 4\n"),
            std::string::npos)
      << prom;
  // The sampler's ring-derived <name>.count / <name>.sum series would
  // sanitize to the exact sample names the histogram family owns; they
  // must be suppressed, or one name would carry two # TYPE declarations.
  EXPECT_EQ(prom.find("# TYPE cgp_live_test_promh_latency_count"),
            std::string::npos)
      << prom;
  EXPECT_EQ(prom.find("# TYPE cgp_live_test_promh_latency_sum"),
            std::string::npos)
      << prom;
  EXPECT_EQ(prom.find("{metric=\"live_test.promh.latency.count\"}"),
            std::string::npos)
      << prom;
  EXPECT_EQ(prom.find("{metric=\"live_test.promh.latency.sum\"}"),
            std::string::npos)
      << prom;
}

// Histogram label values go through the same escaping as scalar series:
// backslash, double quote, and newline in the registry name survive only
// in escaped form, on every `_bucket` / `_sum` / `_count` line.
TEST(LiveSamplerTest, PrometheusHistogramEscapesLabels) {
  auto& reg = telemetry::registry::global();
  reg.reset();
  live::sampler s({.period_ms = 10, .capacity = 8, .watch = false});
  reg.get_histogram("live_test.promh.esc\\back\"quote\nline").record(2);
  s.sample_at(0);
  const std::string prom = s.export_prometheus();
  const std::string escaped = "live_test.promh.esc\\\\back\\\"quote\\nline";
  EXPECT_NE(prom.find("_bucket{metric=\"" + escaped + "\",le=\"3\"} 1\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("_bucket{metric=\"" + escaped + "\",le=\"+Inf\"} 1\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("_sum{metric=\"" + escaped + "\"} 2\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("_count{metric=\"" + escaped + "\"} 1\n"),
            std::string::npos)
      << prom;
  // No raw newline survives inside any label value.
  EXPECT_EQ(prom.find("quote\nline"), std::string::npos) << prom;
}

TEST(LiveSamplerTest, ValidatorRejectsUnknownKindsAndTimeTravel) {
  auto doc = telemetry::parse_json(manual_run_export());
  ASSERT_FALSE(doc.at("series").arr.empty());
  doc.obj["series"].arr[0].obj["kind"].str = "nonsense";
  EXPECT_FALSE(live::validate_live_export(doc).ok);
  auto doc2 = telemetry::parse_json(manual_run_export());
  for (auto& s : doc2.obj["series"].arr) {
    if (s.at("points").arr.size() < 2) continue;
    std::swap(s.obj["points"].arr.front().obj["t_ms"].num,
              s.obj["points"].arr.back().obj["t_ms"].num);
    EXPECT_FALSE(live::validate_live_export(doc2).ok);
    return;
  }
  FAIL() << "no multi-point series to tamper with";
}

// ---------------------------------------------------------------------------
// shutdown races (the tsan-live preset runs these under ThreadSanitizer)
// ---------------------------------------------------------------------------

TEST(LiveSamplerTest, StartStopStartSurvives) {
  live::sampler s({.period_ms = 1, .capacity = 8, .watch = false});
  EXPECT_FALSE(s.running());
  s.start();
  EXPECT_TRUE(s.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  s.stop();
  EXPECT_FALSE(s.running());
  const std::uint64_t after_first = s.samples_taken();
  EXPECT_GT(after_first, 0u);
  s.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  s.stop();
  EXPECT_GT(s.samples_taken(), after_first);
}

TEST(LiveSamplerTest, SamplingDuringExportIsSafe) {
  auto& reg = telemetry::registry::global();
  live::sampler s({.period_ms = 1, .capacity = 32, .watch = false});
  auto& c = reg.get_counter("live_test.race_counter");
  s.start();
  std::thread mutator([&c] {
    for (int i = 0; i < 2000; ++i) c.add();
  });
  for (int i = 0; i < 20; ++i) {
    const std::string json = s.export_json();
    EXPECT_NO_THROW((void)telemetry::parse_json(json));
    (void)s.export_prometheus();
  }
  mutator.join();
  s.stop();
  const auto v = live::validate_live_export(
      telemetry::parse_json(s.export_json()));
  EXPECT_TRUE(v.ok) << v.error_text();
}

// Satellite regression (tsan-live hammers this): destroying a thread pool
// while the watchdog-driving sampler is live must deregister the pool's
// worker heartbeats IMMEDIATELY (the dtor's eager prune_expired), not at
// the sampler's next tick — and the concurrent prune/check on the shared
// global watchdog must be race-free.
TEST(WatchdogTest, PoolDestructionPrunesHeartbeatsWhileSamplerRuns) {
  auto& wd = live::watchdog::global();
  const std::size_t baseline = wd.heartbeat_count();
  live::sampler s({.period_ms = 1, .capacity = 16, .watch = true});
  s.start();
  for (int round = 0; round < 8; ++round) {
    {
      parallel::thread_pool pool(2);
      EXPECT_EQ(wd.heartbeat_count(), baseline + 2);
      pool.run_chunks(4, [](std::size_t) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      });
    }
    // No sampler tick needed: the dtor pruned the dead registrations.
    EXPECT_EQ(wd.heartbeat_count(), baseline);
  }
  s.stop();
}

namespace {

// A chatty process for the inproc stall test: pings every neighbor each
// round so the run never quiesces, and the FIRST node to reach the stall
// round while alive wedges its superstep (a shared flag, so churn downing
// any particular node cannot dodge the plant).
class stall_once_process final : public distributed::process {
 public:
  stall_once_process(std::atomic<bool>& stalled, std::uint64_t sleep_ms)
      : stalled_(&stalled), sleep_ms_(sleep_ms) {}

  void start(distributed::context& ctx) override { ping(ctx); }
  void receive(distributed::context&, const distributed::message&) override {}
  void on_round(distributed::context& ctx) override {
    if (ctx.round() >= kStallRound && !stalled_->exchange(true))
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    ping(ctx);
  }

 private:
  static constexpr std::size_t kStallRound = 4;
  void ping(distributed::context& ctx) {
    for (int n : ctx.neighbors()) ctx.send(n, "ping");
  }

  std::atomic<bool>* stalled_;
  std::uint64_t sleep_ms_;
};

}  // namespace

// Satellite gate (ISSUE 10): the watchdog and the live counters must keep
// working under inproc churn.  A node wedging its superstep inside a
// churning inproc run holds the round barrier open; the run's heartbeat
// goes silent while busy, and the sampler-driven watchdog must emit
// EXACTLY ONE episode verdict naming `distributed.inproc` — churn noise
// must neither mask the stall nor inflate it into repeat verdicts.
TEST(WatchdogTest, InprocChurnStallProducesOneEpisodeVerdict) {
  constexpr std::uint64_t kPeriodMs = 20;
  auto& wd = live::watchdog::global();
  wd.reset();
  std::mutex mu;
  std::vector<live::stall_event> events;
  wd.on_stall([&](const live::stall_event& ev) {
    const std::lock_guard lock(mu);
    events.push_back(ev);
  });
  auto& reg = telemetry::registry::global();
  const std::uint64_t runs_before =
      reg.get_counter("distributed.network.runs.inproc").value();
  live::sampler s({.period_ms = kPeriodMs, .capacity = 64, .watch = true,
                   .miss_threshold = 2});
  s.start();
  {
    distributed::net_options opts;
    opts.nodes = 12;
    opts.topo = distributed::topology::complete;
    opts.workers = 2;
    opts.faults.churn_crash = 0.05;
    opts.faults.churn_recover = 0.3;
    opts.faults.churn_until = 8;
    distributed::inproc_transport net(opts);
    std::atomic<bool> stalled{false};
    net.spawn([&stalled](int) {
      return std::make_unique<stall_once_process>(stalled, kPeriodMs * 12);
    });
    const auto stats = net.run(10);
    EXPECT_TRUE(stalled.load()) << "the planted stall never executed";
    EXPECT_GT(stats.messages_total, 0u);
  }
  s.stop();
  wd.on_stall(nullptr);
  // One explicit final sweep: the run bumps its counters at run END, which
  // can land between the background loop's last tick and stop().  The run
  // heartbeat is already deregistered, so this cannot mint extra verdicts.
  s.sample_at(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count()));
  const std::lock_guard lock(mu);
  std::size_t inproc_verdicts = 0;
  for (const live::stall_event& ev : events) {
    EXPECT_EQ(ev.participant, "distributed.inproc.run") << ev.participant;
    EXPECT_GE(ev.silent_ms, 2 * kPeriodMs);
    if (ev.participant.find("distributed.inproc") != std::string::npos)
      ++inproc_verdicts;
  }
  EXPECT_EQ(inproc_verdicts, 1u);
  EXPECT_EQ(events.size(), 1u);
  // The live counters kept flowing under churn: the run landed in the
  // backend's per-lane counter and the sampler retained its series.
  EXPECT_EQ(reg.get_counter("distributed.network.runs.inproc").value(),
            runs_before + 1);
  bool lane_seen = false;
  for (const auto& sv : s.series())
    if (sv.name == "distributed.network.runs.inproc") lane_seen = true;
  EXPECT_TRUE(lane_seen) << "no distributed.network.runs.inproc series";
}

// ---------------------------------------------------------------------------
// env_info caching (shared environment block satellite)
// ---------------------------------------------------------------------------

TEST(EnvInfoTest, CachedBlockIsStableAcrossCallsExceptTimestamp) {
  const auto a = perf::env_info("2026-01-01T00:00:00Z");
  const auto b = perf::env_info("2026-01-02T00:00:00Z");
  EXPECT_EQ(a.compiler, b.compiler);
  EXPECT_EQ(a.build_type, b.build_type);
  EXPECT_EQ(a.cxx_flags, b.cxx_flags);
  EXPECT_EQ(a.hardware_threads, b.hardware_threads);
  EXPECT_EQ(a.os, b.os);
  EXPECT_EQ(a.timestamp, "2026-01-01T00:00:00Z");
  EXPECT_EQ(b.timestamp, "2026-01-02T00:00:00Z");
}

}  // namespace
