// Self-tests for the property-based conformance checker (src/check): the
// generator/shrinker/runner triple must itself be deterministic, minimal,
// and loud about vacuous suites before the conformance suites built on it
// can be trusted.
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/gen.hpp"
#include "check/gtest_support.hpp"
#include "check/property.hpp"
#include "check/shrink.hpp"
#include "telemetry/telemetry.hpp"

namespace check = cgp::check;

CGP_REGISTER_SEED_BANNER();

TEST(RandomSource, SameSeedSameStream) {
  check::random_source a(123456789), b(123456789);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.bits(), b.bits());
}

TEST(RandomSource, DifferentSeedsDiverge) {
  check::random_source a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) differing += a.bits() != b.bits();
  EXPECT_GT(differing, 15);
}

TEST(RandomSource, IntInStaysInRange) {
  check::random_source rs(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rs.int_in(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RandomSource, CaseSeedsAreIndependentStreams) {
  const std::uint64_t s1 = check::case_seed(42, 0);
  const std::uint64_t s2 = check::case_seed(42, 1);
  const std::uint64_t s3 = check::case_seed(43, 0);
  EXPECT_NE(s1, s2);
  EXPECT_NE(s1, s3);
  EXPECT_EQ(s1, check::case_seed(42, 0));
}

TEST(Arbitrary, SignedGenerationIsBiasedSmall) {
  check::random_source rs(99);
  int small = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto v = check::arbitrary<std::int64_t>::generate(rs);
    if (v >= -4 && v <= 4) ++small;
  }
  // ~55% by construction; leave slack for the tail distributions.
  EXPECT_GT(small, 400);
}

TEST(Arbitrary, DoublesAreExactDyadics) {
  check::random_source rs(5);
  for (int i = 0; i < 200; ++i) {
    const double v = check::arbitrary<double>::generate(rs);
    EXPECT_EQ(v * 4.0, std::round(v * 4.0));
    EXPECT_LE(std::fabs(v), 64.0);
  }
}

TEST(Shrinker, IntegerCandidatesAreSimpler) {
  const auto cs = check::shrinker<std::int64_t>::candidates(-100);
  ASSERT_FALSE(cs.empty());
  EXPECT_EQ(cs.front(), 0);
  for (const auto c : cs) EXPECT_LE(std::abs(c), 100);
  EXPECT_TRUE(check::shrinker<std::int64_t>::candidates(0).empty());
}

TEST(Shrinker, StringCandidatesAreSimpler) {
  const auto cs = check::shrinker<std::string>::candidates("dcba");
  ASSERT_FALSE(cs.empty());
  EXPECT_EQ(cs.front(), "");
  EXPECT_TRUE(check::shrinker<std::string>::candidates("").empty());
}

TEST(Shrinker, VectorShrinksLengthAndElements) {
  const std::vector<std::int64_t> v = {7, 9};
  const auto cs = check::shrinker<std::vector<std::int64_t>>::candidates(v);
  ASSERT_FALSE(cs.empty());
  EXPECT_TRUE(cs.front().empty());
  bool has_element_shrink = false;
  for (const auto& c : cs)
    if (c.size() == 2 && (c[0] == 0 || c[1] == 0)) has_element_shrink = true;
  EXPECT_TRUE(has_element_shrink);
}

TEST(ForAll, PassingPropertyRunsAllCases) {
  const auto res = check::for_all<std::int64_t, std::int64_t>(
      "self.addition_cancels",
      [](std::int64_t a, std::int64_t b) { return (a + b) - b == a; });
  EXPECT_TRUE(res.ok);
  EXPECT_FALSE(res.falsified);
  EXPECT_EQ(res.cases_run, check::config{}.cases);
  EXPECT_TRUE(res.message.empty());
}

TEST(ForAll, FailingPropertyShrinksToBoundary) {
  // Fails exactly for x >= 10: the minimal counterexample is 10 itself.
  const auto res = check::for_all<std::int64_t>(
      "self.below_ten", [](std::int64_t x) { return x < 10; });
  ASSERT_TRUE(res.falsified) << "generator never produced a value >= 10";
  ASSERT_EQ(res.counterexample.size(), 1u);
  EXPECT_EQ(res.counterexample[0], "10");
  EXPECT_NE(res.message.find("CGP_CHECK_SEED="), std::string::npos);
  EXPECT_NE(res.message.find("counterexample: (10)"), std::string::npos);
}

TEST(ForAll, FailureReplaysDeterministicallyFromReportedSeed) {
  const auto pred = [](std::int64_t x, std::int64_t y) {
    return x + y < 200;  // falsifiable, needs both components
  };
  const auto first = check::for_all<std::int64_t, std::int64_t>(
      "self.replay", pred);
  ASSERT_TRUE(first.falsified);
  check::config replay_cfg;
  replay_cfg.seed = first.seed;  // what the CGP_CHECK_SEED line reports
  const auto second = check::for_all<std::int64_t, std::int64_t>(
      "self.replay", pred, replay_cfg);
  ASSERT_TRUE(second.falsified);
  EXPECT_EQ(first.failing_case, second.failing_case);
  EXPECT_EQ(first.counterexample, second.counterexample);
  EXPECT_EQ(first.message, second.message);
}

TEST(ForAll, DistinctSeedsExploreDistinctCases) {
  std::vector<std::string> first_values;
  for (std::uint64_t seed : {1ull, 2ull}) {
    check::config cfg;
    cfg.seed = seed;
    cfg.cases = 1;
    const auto res = check::for_all<std::int64_t>(
        "self.seed_sensitivity", [](std::int64_t) { return false; }, cfg);
    ASSERT_TRUE(res.falsified);
    ASSERT_TRUE(res.shrink_steps > 0 || !res.counterexample.empty());
    first_values.push_back(res.repro());
  }
  EXPECT_NE(first_values[0], first_values[1]);
}

TEST(ForAll, DiscardsDoNotCountAsCases) {
  check::config cfg;
  cfg.cases = 50;
  const auto res = check::for_all<std::int64_t>(
      "self.even_only",
      [](std::int64_t x) {
        if (x % 2 != 0) throw check::discard_case{};
        return (x * x) % 4 == 0;
      },
      cfg);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.cases_run, 50u);
  EXPECT_GT(res.discarded, 0u);
}

TEST(ForAll, AllDiscardedIsAVacuousSuiteFailure) {
  const auto res = check::for_all<std::int64_t>(
      "self.vacuous",
      [](std::int64_t) -> bool { throw check::discard_case{}; });
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.falsified);  // not a counterexample — a coverage failure
  EXPECT_EQ(res.cases_run, 0u);
  EXPECT_NE(res.message.find("0 cases"), std::string::npos);
  EXPECT_NE(res.message.find("CGP_CHECK_SEED="), std::string::npos);
}

TEST(ForAll, ThrowingPredicateIsACounterexample) {
  const auto res = check::for_all<std::int64_t>(
      "self.throws", [](std::int64_t x) -> bool {
        if (x > 3) throw std::runtime_error("domain violation");
        return true;
      });
  ASSERT_TRUE(res.falsified);
  EXPECT_NE(res.message.find("raised: domain violation"), std::string::npos);
  ASSERT_EQ(res.counterexample.size(), 1u);
  EXPECT_EQ(res.counterexample[0], "4");  // minimal throwing input
}

TEST(ForAll, ResultHelpersAggregate) {
  std::vector<check::result> rs;
  rs.push_back(check::for_all<std::int64_t>(
      "self.agg_pass", [](std::int64_t) { return true; }));
  EXPECT_TRUE(check::all_ok(rs));
  EXPECT_EQ(check::total_cases(rs), check::config{}.cases);
  EXPECT_TRUE(check::failure_messages(rs).empty());
  rs.push_back(check::for_all<std::int64_t>(
      "self.agg_fail", [](std::int64_t) { return false; }));
  EXPECT_FALSE(check::all_ok(rs));
  EXPECT_FALSE(check::failure_messages(rs).empty());
}

TEST(ForAll, RecordsTelemetryCounters) {
  auto& reg = cgp::telemetry::registry::global();
  const auto before = reg.get_counter("check.properties.executed").value();
  const auto cases_before =
      reg.get_counter("check.properties.cases_executed").value();
  (void)check::for_all<std::int64_t>("self.telemetry",
                                     [](std::int64_t) { return true; });
  EXPECT_EQ(reg.get_counter("check.properties.executed").value(), before + 1);
  EXPECT_EQ(reg.get_counter("check.properties.cases_executed").value(),
            cases_before + check::config{}.cases);
}

TEST(Seed, BannerNamesTheEnvironmentVariable) {
  EXPECT_EQ(check::seed_banner().rfind("CGP_CHECK_SEED=", 0), 0u);
  EXPECT_EQ(check::default_seed(), check::config{}.seed);
}
