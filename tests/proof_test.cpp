// Tests for the DPL-style proof checker (Section 3.3, Fig. 6).
#include <gtest/gtest.h>

#include "proof/deduction.hpp"
#include "proof/theories.hpp"

namespace cgp::proof {
namespace {

using T = term;

prop p(const std::string& name) { return prop::atom(name, {}); }

// ---------------------------------------------------------------------------
// prop basics
// ---------------------------------------------------------------------------

TEST(Prop, ToString) {
  const prop f = prop::forall(
      "x", prop::negation(prop::atom("lt", {T::var("x"), T::var("x")})));
  EXPECT_EQ(f.to_string(), "forall x. !lt(x, x)");
  const prop e = prop::equal(T::app("op", {T::var("x"), T::cst("e")}),
                             T::var("x"));
  EXPECT_EQ(e.to_string(), "op(x, e) = x");
}

TEST(Prop, SubstituteVarStopsAtShadowingBinder) {
  const prop q = prop::conjunction(
      prop::atom("P", {T::var("x")}),
      prop::forall("x", prop::atom("Q", {T::var("x")})));
  const prop out = q.substitute_var("x", T::cst("c"));
  EXPECT_EQ(out.to_string(), "(P(c) & forall x. Q(x))");
}

TEST(Prop, GeneralizeConstant) {
  const prop q = prop::atom("P", {T::cst("$c0"), T::var("y")});
  EXPECT_EQ(q.generalize_constant("$c0", "x").to_string(), "P(x, y)");
}

TEST(Prop, RenameSymbolsActsOnPredicatesAndFunctions) {
  const prop q = prop::forall(
      "x", prop::atom("lt", {T::app("inv", {T::var("x")}), T::cst("e")}));
  const prop out = q.rename_symbols({{"lt", "<"}, {"inv", "-"}, {"e", "0"}});
  EXPECT_EQ(out.to_string(), "forall x. <(-(x), 0)");
}

// ---------------------------------------------------------------------------
// primitive methods: proper deductions
// ---------------------------------------------------------------------------

TEST(Methods, ModusPonens) {
  proof_context ctx;
  ctx.assert_axiom(prop::implication(p("a"), p("b")));
  ctx.assert_axiom(p("a"));
  const prop b = ctx.modus_ponens(prop::implication(p("a"), p("b")), p("a"));
  EXPECT_EQ(b, p("b"));
  EXPECT_TRUE(ctx.holds(p("b")));
}

TEST(Methods, AndIntroElim) {
  proof_context ctx;
  ctx.assert_axiom(p("a"));
  ctx.assert_axiom(p("b"));
  const prop conj = ctx.and_intro(p("a"), p("b"));
  EXPECT_EQ(ctx.and_elim_left(conj), p("a"));
  EXPECT_EQ(ctx.and_elim_right(conj), p("b"));
}

TEST(Methods, AssumeDischargesHypothesis) {
  proof_context ctx;
  ctx.assert_axiom(prop::implication(p("a"), p("b")));
  const prop impl = ctx.assume(p("a"), [&](proof_context& h) {
    return h.modus_ponens(prop::implication(p("a"), p("b")), p("a"));
  });
  EXPECT_EQ(impl, prop::implication(p("a"), p("b")));
  // The hypothesis must not persist in the outer base.
  EXPECT_FALSE(ctx.holds(p("a")));
  EXPECT_FALSE(ctx.holds(p("b")));
}

TEST(Methods, ByContradiction) {
  proof_context ctx;
  ctx.assert_axiom(prop::implication(prop::negation(p("a")), p("b")));
  ctx.assert_axiom(prop::negation(p("b")));
  const prop a = ctx.by_contradiction(p("a"), [&](proof_context& h) {
    const prop b = h.modus_ponens(
        prop::implication(prop::negation(p("a")), p("b")),
        prop::negation(p("a")));
    return h.absurd(b, prop::negation(p("b")));
  });
  EXPECT_EQ(a, p("a"));
}

TEST(Methods, CasesBothBranches) {
  proof_context ctx;
  ctx.assert_axiom(prop::disjunction(p("a"), p("b")));
  ctx.assert_axiom(prop::implication(p("a"), p("g")));
  ctx.assert_axiom(prop::implication(p("b"), p("g")));
  const prop g = ctx.cases(
      prop::disjunction(p("a"), p("b")), p("g"),
      [&](proof_context& h) {
        return h.modus_ponens(prop::implication(p("a"), p("g")), p("a"));
      },
      [&](proof_context& h) {
        return h.modus_ponens(prop::implication(p("b"), p("g")), p("b"));
      });
  EXPECT_EQ(g, p("g"));
}

TEST(Methods, UspecInstantiates) {
  proof_context ctx;
  const prop univ = prop::forall(
      "x", prop::atom("P", {T::var("x"), T::var("y")}));
  ctx.assert_axiom(univ);
  const prop inst = ctx.uspec(univ, T::cst("c"));
  EXPECT_EQ(inst.to_string(), "P(c, y)");
}

TEST(Methods, UgenProducesUniversal) {
  proof_context ctx;
  ctx.assert_axiom(prop::forall("x", prop::atom("P", {T::var("x")})));
  const prop out = ctx.ugen("z", [&](proof_context& h, const term& c) {
    return h.uspec(prop::forall("x", prop::atom("P", {T::var("x")})), c);
  });
  EXPECT_EQ(out.to_string(), "forall z. P(z)");
}

TEST(Methods, EqualityChain) {
  proof_context ctx;
  const prop ab = prop::equal(T::cst("a"), T::cst("b"));
  const prop bc = prop::equal(T::cst("b"), T::cst("c"));
  ctx.assert_axiom(ab);
  ctx.assert_axiom(bc);
  const prop ac = ctx.eq_transitive(ab, bc);
  EXPECT_EQ(ac, prop::equal(T::cst("a"), T::cst("c")));
  EXPECT_EQ(ctx.eq_symmetric(ac), prop::equal(T::cst("c"), T::cst("a")));
  const prop cong = ctx.eq_congruence("f", {ac});
  EXPECT_EQ(cong.to_string(), "f(a) = f(c)");
}

TEST(Methods, EqSubstitute) {
  proof_context ctx;
  const prop eq = prop::equal(T::cst("a"), T::cst("b"));
  const prop pa = prop::atom("P", {T::cst("a"), T::cst("a")});
  ctx.assert_axiom(eq);
  ctx.assert_axiom(pa);
  const prop pb = prop::atom("P", {T::cst("b"), T::cst("b")});
  EXPECT_EQ(ctx.eq_substitute(eq, pa, pb), pb);
}

// ---------------------------------------------------------------------------
// improper deductions must throw and add nothing
// ---------------------------------------------------------------------------

TEST(Improper, PremiseNotInBase) {
  proof_context ctx;
  EXPECT_THROW(ctx.claim(p("a")), proof_error);
  EXPECT_THROW(ctx.modus_ponens(prop::implication(p("a"), p("b")), p("a")),
               proof_error);
  EXPECT_THROW(ctx.and_elim_left(prop::conjunction(p("a"), p("b"))),
               proof_error);
  EXPECT_FALSE(ctx.holds(p("b")));
}

TEST(Improper, ShapeMismatch) {
  proof_context ctx;
  ctx.assert_axiom(p("a"));
  ctx.assert_axiom(p("b"));
  EXPECT_THROW(ctx.modus_ponens(p("a"), p("b")), proof_error);
  EXPECT_THROW(ctx.and_elim_left(p("a")), proof_error);
  EXPECT_THROW(ctx.double_negation(p("a")), proof_error);
  EXPECT_THROW(ctx.uspec(p("a"), T::cst("c")), proof_error);
}

TEST(Improper, AbsurdRequiresExactNegation) {
  proof_context ctx;
  ctx.assert_axiom(p("a"));
  ctx.assert_axiom(prop::negation(p("b")));
  EXPECT_THROW(ctx.absurd(p("a"), prop::negation(p("b"))), proof_error);
}

TEST(Improper, ByContradictionMustReachFalsum) {
  proof_context ctx;
  ctx.assert_axiom(p("b"));
  EXPECT_THROW(ctx.by_contradiction(
                   p("a"), [&](proof_context& h) { return h.claim(p("b")); }),
               proof_error);
}

TEST(Improper, AssumeBodyMustProveItsResult) {
  proof_context ctx;
  EXPECT_THROW(
      ctx.assume(p("a"), [&](proof_context&) { return p("unproved"); }),
      proof_error);
}

TEST(Improper, EqTransitiveMiddleMismatch) {
  proof_context ctx;
  const prop ab = prop::equal(T::cst("a"), T::cst("b"));
  const prop cd = prop::equal(T::cst("c"), T::cst("d"));
  ctx.assert_axiom(ab);
  ctx.assert_axiom(cd);
  EXPECT_THROW(ctx.eq_transitive(ab, cd), proof_error);
}

TEST(Improper, EqSubstituteRejectsUnrelatedRewrite) {
  proof_context ctx;
  const prop eq = prop::equal(T::cst("a"), T::cst("b"));
  const prop pa = prop::atom("P", {T::cst("a")});
  ctx.assert_axiom(eq);
  ctx.assert_axiom(pa);
  EXPECT_THROW(
      ctx.eq_substitute(eq, pa, prop::atom("P", {T::cst("z")})), proof_error);
}

// ---------------------------------------------------------------------------
// Fig. 6: the Strict Weak Order theory
// ---------------------------------------------------------------------------

TEST(StrictWeakOrder, ReflexivityDerived) {
  std::size_t steps = 0;
  const prop thm = theories::equivalence_reflexive().check({}, &steps);
  EXPECT_EQ(thm.to_string(), "forall x. E(x, x)");
  EXPECT_GT(steps, 0u);
}

TEST(StrictWeakOrder, SymmetryDerived) {
  const prop thm = theories::equivalence_symmetric().check();
  EXPECT_EQ(thm.to_string(), "forall x. forall y. (E(x, y) ==> E(y, x))");
}

TEST(StrictWeakOrder, EquivalenceRelationHeadline) {
  std::size_t steps = 0;
  const prop thm = theories::equivalence_relation().check({}, &steps);
  // Fig. 6's claim: reflexivity and symmetry are derivable, so E is an
  // equivalence relation.
  EXPECT_NE(thm.to_string().find("forall x. E(x, x)"), std::string::npos);
  EXPECT_GT(steps, 10u);
}

TEST(StrictWeakOrder, GenericProofInstantiatesLikeGenericAlgorithm) {
  // One proof text, many models — "express a proof once and subsequently
  // instantiate it many times" (Section 3.3).
  const theorem thm = theories::equivalence_relation();
  for (const auto& [lt, eq] :
       std::vector<std::pair<std::string, std::string>>{
           {"less_int", "equiv_int"},
           {"lex_string", "equiv_string"},
           {"date_before", "same_day"}}) {
    const prop inst = thm.check(signature{{{"lt", lt}, {"E", eq}}});
    EXPECT_NE(inst.to_string().find(eq + "(x, x)"), std::string::npos);
    EXPECT_EQ(inst.to_string().find("lt("), std::string::npos);
  }
}

TEST(StrictWeakOrder, TamperedStatementRejected) {
  theorem thm = theories::equivalence_reflexive();
  thm.statement = [](const signature& s) {
    // Claim something the proof does not establish.
    return prop::forall(
        "x", prop::atom(s("lt"), {T::var("x"), T::var("x")}));
  };
  EXPECT_THROW(thm.check(), proof_error);
}

TEST(StrictWeakOrder, ProofWithoutAxiomsRejected) {
  theorem thm = theories::equivalence_reflexive();
  thm.axioms = [](const signature&) { return std::vector<prop>{}; };
  EXPECT_THROW(thm.check(), proof_error);
}

// ---------------------------------------------------------------------------
// Group and Ring theories
// ---------------------------------------------------------------------------

TEST(GroupTheory, IdentityUnique) {
  const prop thm = theories::group_identity_unique().check();
  EXPECT_EQ(thm.to_string(),
            "forall u. (forall x. op(x, u) = x ==> u = e)");
}

TEST(GroupTheory, LeftCancellation) {
  std::size_t steps = 0;
  const prop thm = theories::group_left_cancellation().check({}, &steps);
  EXPECT_NE(thm.to_string().find("==> b = c"), std::string::npos);
  EXPECT_GT(steps, 15u);
}

TEST(GroupTheory, InverseUnique) {
  const prop thm = theories::group_inverse_unique().check();
  EXPECT_NE(thm.to_string().find("==> b = inv(a)"), std::string::npos);
}

TEST(GroupTheory, InstantiatesForIntegerAddition) {
  const prop thm = theories::group_left_cancellation().check(
      signature{{{"op", "+"}, {"e", "0"}, {"inv", "-"}}});
  EXPECT_NE(thm.to_string().find("(a + b) = (a + c)"), std::string::npos);
}

TEST(RingTheory, AnnihilationDerived) {
  // x * 0 = 0 — the machine-checked licence for the rewrite engine's
  // derived rule.
  std::size_t steps = 0;
  const prop thm = theories::ring_annihilation().check({}, &steps);
  EXPECT_EQ(thm.to_string(), "forall x. mul(x, e) = e");
  EXPECT_GT(steps, 20u);
}

TEST(RingTheory, AnnihilationInstantiatesForConcreteRing) {
  const prop thm = theories::ring_annihilation().check(
      signature{{{"op", "+"}, {"e", "0"}, {"inv", "-"}, {"mul", "*"},
                 {"one", "1"}}});
  EXPECT_EQ(thm.to_string(), "forall x. (x * 0) = 0");
}

// Proof *checking* is linear in proof size: steps do not explode when the
// same theorem is instantiated repeatedly (the amortization argument).
TEST(Checking, StepCountIsStableAcrossInstantiations) {
  const theorem thm = theories::equivalence_relation();
  std::size_t s1 = 0, s2 = 0;
  (void)thm.check(signature{{{"lt", "a"}}}, &s1);
  (void)thm.check(signature{{{"lt", "b"}}}, &s2);
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace cgp::proof
