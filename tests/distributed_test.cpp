// Tests for the message-passing simulator and the distributed algorithms
// whose measured message counts back the Section 4 taxonomy.
#include <gtest/gtest.h>

#include <cmath>

#include "check/gtest_support.hpp"
#include "check/property.hpp"
#include "distributed/algorithms.hpp"

CGP_REGISTER_SEED_BANNER();

namespace cgp::distributed {
namespace {

/// All network seeds derive from the documented CGP_CHECK_SEED source
/// (default 42) via per-site indices: the seed banner in the ctest log is
/// the whole reproduction recipe.
std::uint32_t net_seed(std::uint64_t site) {
  return static_cast<std::uint32_t>(
      check::case_seed(check::default_seed(), site));
}

// ---------------------------------------------------------------------------
// network plumbing
// ---------------------------------------------------------------------------

TEST(Network, RingTopologyDegrees) {
  sim_transport net({.nodes = 6, .topo = topology::ring});
  for (int v = 0; v < 6; ++v)
    EXPECT_EQ(net.neighbors_of(v).size(), 2u) << v;
  EXPECT_EQ(net.edge_count(), 6u);
}

TEST(Network, CompleteTopology) {
  sim_transport net({.nodes = 5, .topo = topology::complete});
  for (int v = 0; v < 5; ++v) EXPECT_EQ(net.neighbors_of(v).size(), 4u);
  EXPECT_EQ(net.edge_count(), 10u);
}

TEST(Network, StarTopology) {
  sim_transport net({.nodes = 7, .topo = topology::star});
  EXPECT_EQ(net.neighbors_of(0).size(), 6u);
  for (int v = 1; v < 7; ++v) EXPECT_EQ(net.neighbors_of(v).size(), 1u);
}

TEST(Network, RandomConnectedIsConnected) {
  sim_transport net({.nodes = 30, .topo = topology::random_connected, .seed = net_seed(0)});
  // Flooding must reach every node on a connected graph.
  net.spawn(flooding_broadcast(0));
  (void)net.run();
  EXPECT_EQ(net.deciders("got").size(), 30u);
}

TEST(Network, UidsArePermutationOfOneToN) {
  sim_transport net({.nodes = 10});
  std::vector<bool> seen(11, false);
  for (int v = 0; v < 10; ++v) {
    const long u = net.uid_of(v);
    ASSERT_GE(u, 1);
    ASSERT_LE(u, 10);
    EXPECT_FALSE(seen[static_cast<std::size_t>(u)]);
    seen[static_cast<std::size_t>(u)] = true;
  }
}

TEST(Network, TopologyEnforcedOnSend) {
  struct bad_sender final : process {
    void start(context& ctx) override { ctx.send(3, "x"); }
    void receive(context&, const message&) override {}
  };
  sim_transport net({.nodes = 6});  // 0 is not adjacent to 3
  net.spawn([](int id) -> std::unique_ptr<process> {
    if (id == 0) return std::make_unique<bad_sender>();
    return std::make_unique<bad_sender>();
  });
  EXPECT_THROW((void)net.run(), std::invalid_argument);
}

TEST(Network, RunWithoutSpawnThrows) {
  sim_transport net({.nodes = 3});
  EXPECT_THROW((void)net.run(), std::logic_error);
}

// ---------------------------------------------------------------------------
// leader election
// ---------------------------------------------------------------------------

class ElectionSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ElectionSizes, LcrElectsUniqueMaximumSynchronous) {
  const auto out = run_ring_election(lcr_leader_election(),
                                     {.nodes = GetParam()});
  EXPECT_EQ(out.leaders, 1u);
  EXPECT_EQ(out.leader_uid, static_cast<long>(GetParam()));  // max uid = n
}

TEST_P(ElectionSizes, LcrElectsUniqueMaximumAsynchronous) {
  const auto out = run_ring_election(
      lcr_leader_election(),
      {.nodes = GetParam(), .mode = timing::asynchronous});
  EXPECT_EQ(out.leaders, 1u);
  EXPECT_EQ(out.leader_uid, static_cast<long>(GetParam()));
}

TEST_P(ElectionSizes, PetersonElectsUniqueMaximumSync) {
  const auto out = run_ring_election(peterson_leader_election(),
                                     {.nodes = GetParam()});
  EXPECT_EQ(out.leaders, 1u);
  EXPECT_EQ(out.leader_uid, static_cast<long>(GetParam()));
}

TEST_P(ElectionSizes, PetersonElectsUniqueMaximumAsyncFifo) {
  // Peterson needs FIFO links; the asynchronous network preserves per-link
  // order by default.
  const auto out = run_ring_election(
      peterson_leader_election(),
      {.nodes = GetParam(), .mode = timing::asynchronous});
  EXPECT_EQ(out.leaders, 1u);
  EXPECT_EQ(out.leader_uid, static_cast<long>(GetParam()));
}

TEST_P(ElectionSizes, HsElectsUniqueMaximum) {
  const auto out =
      run_ring_election(hs_leader_election(), {.nodes = GetParam()});
  EXPECT_EQ(out.leaders, 1u);
  EXPECT_EQ(out.leader_uid, static_cast<long>(GetParam()));
}

TEST_P(ElectionSizes, HsWorksAsynchronouslyToo) {
  const auto out = run_ring_election(
      hs_leader_election(),
      {.nodes = GetParam(), .mode = timing::asynchronous});
  EXPECT_EQ(out.leaders, 1u);
  EXPECT_EQ(out.leader_uid, static_cast<long>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(RingSizes, ElectionSizes,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u, 33u,
                                           64u));

TEST(Election, EveryNonLeaderLearnsTheLeader) {
  sim_transport net({.nodes = 16});
  net.spawn(lcr_leader_election());
  (void)net.run();
  EXPECT_EQ(net.deciders("leader").size(), 1u);
  EXPECT_EQ(net.deciders("leader_known").size(), 15u);
}

namespace {
/// Runs an election on a ring with uids DESCENDING clockwise — the layout
/// that realizes LCR's Theta(n^2) worst case (every uid travels as far as
/// it can before a larger one swallows it).
election_outcome run_worst_case_ring(const process_factory& algo,
                                     std::size_t n) {
  sim_transport net({.nodes = n});
  std::vector<long> uids(n);
  for (std::size_t i = 0; i < n; ++i) uids[i] = static_cast<long>(n - i);
  net.set_uids(std::move(uids));
  net.spawn(algo);
  election_outcome out;
  out.stats = net.run();
  for (int node : net.deciders("leader")) {
    ++out.leaders;
    out.leader_node = node;
    out.leader_uid = *net.decision(node, "leader");
  }
  return out;
}
}  // namespace

TEST(Election, MessageComplexitySeparation) {
  // The taxonomy's headline: LCR Theta(n^2) vs HS Theta(n log n) in the
  // worst case.  Build the adversarial descending-uid ring and verify the
  // separation and both claimed bounds.
  const std::size_t n = 256;
  const auto lcr = run_worst_case_ring(lcr_leader_election(), n);
  const auto hs = run_worst_case_ring(hs_leader_election(), n);
  EXPECT_EQ(lcr.leaders, 1u);
  EXPECT_EQ(hs.leaders, 1u);
  const double dn = static_cast<double>(n);
  // LCR worst case: ~n(n+1)/2 uid messages + n announcements.
  EXPECT_GE(static_cast<double>(lcr.stats.messages_total), dn * dn / 2.0);
  EXPECT_LE(static_cast<double>(lcr.stats.messages_total), dn * dn + 3 * dn);
  EXPECT_LE(static_cast<double>(hs.stats.messages_total),
            8.0 * dn * std::log2(dn) + 4 * dn);
  EXPECT_LT(hs.stats.messages_total, lcr.stats.messages_total);
}

TEST(Election, RandomLayoutMakesLcrExpectedNLogN) {
  // With random uid placement LCR's expected message count is Theta(n ln n)
  // — far below its worst case (the distinction the taxonomy's notes
  // record).
  const std::size_t n = 256;
  const auto lcr =
      run_ring_election(lcr_leader_election(), {.nodes = n});
  const double dn = static_cast<double>(n);
  EXPECT_LT(static_cast<double>(lcr.stats.messages_total),
            4.0 * dn * std::log(dn) + 3 * dn);
}

TEST(Election, LcrWorstCaseLayoutIsQuadratic) {
  // Build the worst case by hand: uids increasing along the ring means
  // node i's uid travels i hops, totalling ~n^2/2 uid messages.
  // The seeded-uid network cannot express this directly, so approximate by
  // checking growth between sizes instead: messages(2n) ~ 4*messages(n)
  // would only hold for adversarial layouts; with random layouts expected
  // complexity is Theta(n log n) — verify it is super-linear but bounded.
  const auto a =
      run_ring_election(lcr_leader_election(), {.nodes = 64});
  const auto b =
      run_ring_election(lcr_leader_election(), {.nodes = 128});
  EXPECT_GT(b.stats.messages_total, 2 * a.stats.messages_total * 95 / 100);
}

TEST(Election, PetersonStaysWithinItsClaimedBound) {
  for (const std::size_t n : {16u, 64u, 256u}) {
    const auto out = run_worst_case_ring(peterson_leader_election(), n);
    EXPECT_EQ(out.leaders, 1u);
    const double dn = static_cast<double>(n);
    // <= 2 n ceil(log2 n) phase messages + n election detection + n
    // announcements, comfortably under the recorded 6 n ln n guarantee + n.
    EXPECT_LE(static_cast<double>(out.stats.messages_total),
              6.0 * dn * std::log(std::max(dn, 2.0)) + 2.0 * dn)
        << n;
  }
}

TEST(Election, FifoCanBeDisabled) {
  // With reordering channels Peterson's assumptions do not hold; the
  // simulator can model that too (we only check it still terminates and
  // the FIFO flag is honored without crashing).
  sim_transport net({.nodes = 8,
                      .mode = timing::asynchronous,
                      .fifo_links = false});
  net.spawn(lcr_leader_election());  // LCR tolerates reordering
  (void)net.run();
  EXPECT_EQ(net.deciders("leader").size(), 1u);
}

TEST(Election, RandomizedAnonymousElectsExactlyOneLeader) {
  for (std::uint64_t site : {1u, 2u, 3u, 4u, 5u}) {
    const std::uint32_t seed = net_seed(site);
    sim_transport net({.nodes = 8, .seed = seed});
    net.spawn(randomized_anonymous_election());
    (void)net.run();
    EXPECT_EQ(net.deciders("leader").size(), 1u) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// waves and trees
// ---------------------------------------------------------------------------

TEST(Echo, UsesExactlyTwoMessagesPerEdge) {
  for (topology topo : {topology::ring, topology::complete, topology::star,
                        topology::grid, topology::random_connected}) {
    sim_transport net({.nodes = 16, .topo = topo, .seed = net_seed(6)});
    net.spawn(echo_wave(0));
    const run_stats stats = net.run();
    EXPECT_EQ(stats.messages_total, 2 * net.edge_count())
        << to_string(topo);
    EXPECT_EQ(net.deciders("done"), std::vector<int>{0}) << to_string(topo);
  }
}

TEST(Echo, ParentPointersFormATreeReachingEveryone) {
  sim_transport net({.nodes = 25, .topo = topology::grid});
  net.spawn(echo_wave(0));
  (void)net.run();
  EXPECT_EQ(net.deciders("parent").size(), 24u);  // everyone but the root
}

TEST(BfsTree, SynchronousFloodingGivesBfsDistances) {
  // 4x4 grid rooted at corner: distance = manhattan distance.
  sim_transport net({.nodes = 16, .topo = topology::grid});
  net.spawn(bfs_spanning_tree(0));
  (void)net.run();
  for (int v = 0; v < 16; ++v) {
    const long expected = (v / 4) + (v % 4);
    ASSERT_TRUE(net.decision(v, "dist").has_value()) << v;
    EXPECT_EQ(*net.decision(v, "dist"), expected) << v;
  }
}

TEST(Flooding, HopCountsAreAtLeastBfsDistanceAndReachAll) {
  sim_transport net({.nodes = 12,
                     .topo = topology::random_connected,
                     .mode = timing::asynchronous,
                     .seed = net_seed(7)});
  net.spawn(flooding_broadcast(0));
  const run_stats stats = net.run();
  EXPECT_EQ(net.deciders("got").size(), 12u);
  EXPECT_LE(stats.messages_total, 2 * net.edge_count());
}

// ---------------------------------------------------------------------------
// failure injection
// ---------------------------------------------------------------------------

TEST(Failures, CrashedNodeBlocksNothingElsewhere) {
  // Crash a leaf of the star; broadcast still reaches the others.
  sim_transport net({.nodes = 8, .topo = topology::star});
  net.crash(5);
  net.spawn(flooding_broadcast(0));
  (void)net.run();
  EXPECT_EQ(net.deciders("got").size(), 7u);
  EXPECT_FALSE(net.decision(5, "got").has_value());
}

TEST(Failures, HeartbeatDetectsCrash) {
  sim_transport net({.nodes = 6});
  net.spawn(heartbeat_detector(3));
  net.crash(2, /*at_round=*/5);
  (void)net.run(/*max_rounds=*/30);
  // Node 2's ring neighbors are 1 and 3; both must suspect it.
  EXPECT_TRUE(net.decision(1, "suspects:2").has_value());
  EXPECT_TRUE(net.decision(3, "suspects:2").has_value());
  // Nobody suspects a live node.
  EXPECT_FALSE(net.decision(1, "suspects:0").has_value());
  EXPECT_FALSE(net.decision(4, "suspects:5").has_value());
}

TEST(Failures, ByzantineCorruptionChangesElectionOutcome) {
  // A Byzantine node that inflates every uid it forwards can crown a bogus
  // leader id — demonstrating why LCR is classified fault-tolerance:none.
  sim_transport net({.nodes = 8, .seed = net_seed(8)});
  net.corrupt(3, [](message& m) {
    if (m.tag == "uid") m.payload[0] = 999;
  });
  net.spawn(lcr_leader_election());
  (void)net.run(2000);
  // No node's real uid is 999, so no node can ever match it: either no
  // leader emerges or the decided value is corrupt.  Both manifest as a
  // violated uniqueness/validity property.
  bool valid_unique_leader = net.deciders("leader").size() == 1;
  if (valid_unique_leader) {
    const int node = net.deciders("leader")[0];
    valid_unique_leader = (*net.decision(node, "leader") ==
                           static_cast<long>(8));
  }
  EXPECT_FALSE(valid_unique_leader);
}

TEST(Failures, CrashUnderAsynchronousTiming) {
  // Crash hooks behave identically under the asynchronous scheduler: a
  // star leaf crashed before the run never receives and never decides,
  // while the wave still covers the live nodes.
  sim_transport net({.nodes = 8,
                     .topo = topology::star,
                     .mode = timing::asynchronous,
                     .seed = net_seed(9)});
  net.crash(5);
  net.spawn(flooding_broadcast(0));
  (void)net.run();
  EXPECT_EQ(net.deciders("got").size(), 7u);
  EXPECT_FALSE(net.decision(5, "got").has_value());
}

TEST(Failures, CorruptionHookRunsUnderAsynchronousTiming) {
  // A Byzantine forwarder corrupts uids under asynchronous delivery too —
  // the unified fault surface is timing-independent.
  sim_transport net(
      {.nodes = 8, .mode = timing::asynchronous, .seed = net_seed(10)});
  net.corrupt(3, [](message& m) {
    if (m.tag == "uid") m.payload[0] = 999;
  });
  net.spawn(lcr_leader_election());
  (void)net.run(2000);
  bool valid_unique_leader = net.deciders("leader").size() == 1;
  if (valid_unique_leader) {
    const int node = net.deciders("leader")[0];
    valid_unique_leader =
        (*net.decision(node, "leader") == static_cast<long>(8));
  }
  EXPECT_FALSE(valid_unique_leader);
}

TEST(Failures, DeferredCrashCutsAsynchronousCirculation) {
  // Descending-uid ring: the maximum uid (at node 0) must traverse every
  // node to come home.  Node 4 crashes at the first scheduler tick — hops
  // take >= 1 tick each, so the uid is cut mid-circulation and nobody can
  // ever elect.
  sim_transport net({.nodes = 8, .mode = timing::asynchronous, .seed = net_seed(11)});
  std::vector<long> uids(8);
  for (std::size_t i = 0; i < 8; ++i) uids[i] = static_cast<long>(8 - i);
  net.set_uids(std::move(uids));
  net.spawn(lcr_leader_election());
  net.crash(4, /*at_round=*/1);
  (void)net.run(500);
  EXPECT_TRUE(net.deciders("leader").empty());
  EXPECT_FALSE(net.decision(4, "leader_known").has_value());
}

// ---------------------------------------------------------------------------
// API-boundary validation
// ---------------------------------------------------------------------------

TEST(Validation, NeighborsOfRejectsBadNodeWithDescriptiveError) {
  sim_transport net({.nodes = 6});
  try {
    (void)net.neighbors_of(6);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("6"), std::string::npos) << what;
    EXPECT_NE(what.find("node"), std::string::npos) << what;
  }
  EXPECT_THROW((void)net.neighbors_of(-1), std::out_of_range);
}

TEST(Validation, UidOfRejectsBadNode) {
  sim_transport net({.nodes = 4});
  EXPECT_THROW((void)net.uid_of(4), std::out_of_range);
  EXPECT_THROW((void)net.uid_of(-2), std::out_of_range);
  EXPECT_NO_THROW((void)net.uid_of(3));
}

TEST(Validation, CrashAndCorruptAndDecisionValidateNodes) {
  sim_transport net({.nodes = 4});
  EXPECT_THROW(net.crash(4), std::out_of_range);
  EXPECT_THROW(net.corrupt(-1, [](message&) {}), std::out_of_range);
  EXPECT_THROW((void)net.decision(7, "leader"), std::out_of_range);
}

// ---------------------------------------------------------------------------
// accounting (Section 4: local computation matters)
// ---------------------------------------------------------------------------

TEST(Accounting, LocalStepsTrackHandlersAndCharges) {
  sim_transport net({.nodes = 8});
  net.spawn(lcr_leader_election());
  const run_stats stats = net.run();
  EXPECT_GT(stats.local_steps, stats.messages_total);  // start + deliveries
  EXPECT_EQ(stats.local_steps_per_node.size(), 8u);
  std::size_t sum = 0;
  for (std::size_t s : stats.local_steps_per_node) sum += s;
  EXPECT_EQ(sum, stats.local_steps);
}

TEST(Accounting, MessagesByTagBreakdown) {
  sim_transport net({.nodes = 8});
  net.spawn(lcr_leader_election());
  const run_stats stats = net.run();
  EXPECT_GT(stats.messages_by_tag.at("uid"), 0u);
  // Once around the ring: the leader's announcement plus one forward from
  // each of the 7 non-leaders.
  EXPECT_EQ(stats.messages_by_tag.at("leader"), 8u);
}

TEST(Accounting, PerTagAccessors) {
  sim_transport net({.nodes = 8});
  net.spawn(lcr_leader_election());
  const run_stats stats = net.run();
  EXPECT_EQ(stats.messages_for("leader"), 8u);
  EXPECT_EQ(stats.messages_for("no-such-tag"), 0u);
  const auto tags = stats.tags();
  ASSERT_EQ(tags.size(), 2u);  // sorted: "leader", "uid"
  EXPECT_EQ(tags[0], "leader");
  EXPECT_EQ(tags[1], "uid");
  std::size_t by_tag = 0;
  for (const auto& tag : tags) by_tag += stats.messages_for(tag);
  EXPECT_EQ(by_tag, stats.messages_total);
}

TEST(Accounting, PerNodeMessageCounts) {
  sim_transport net({.nodes = 8});
  net.spawn(lcr_leader_election());
  const run_stats stats = net.run();
  ASSERT_EQ(stats.messages_sent_per_node.size(), 8u);
  ASSERT_EQ(stats.messages_received_per_node.size(), 8u);
  std::size_t sent = 0, received = 0;
  for (int v = 0; v < 8; ++v) {
    sent += stats.messages_sent_by(v);
    received += stats.messages_received_by(v);
  }
  // Nothing dropped on a fault-free run: every send is a receive.
  EXPECT_EQ(sent, stats.messages_total);
  EXPECT_EQ(received, stats.messages_total);
  EXPECT_THROW((void)stats.messages_sent_by(8), std::out_of_range);
  EXPECT_THROW((void)stats.messages_received_by(-1), std::out_of_range);
}

}  // namespace
}  // namespace cgp::distributed
