// Tests for the Simplicissimus-style concept-based rewrite engine (Fig. 5).
#include <gtest/gtest.h>

#include <random>

#include "rewrite/engine.hpp"
#include "rewrite/eval.hpp"

namespace cgp::rewrite {
namespace {

using E = expr;

simplifier default_simplifier() {
  simplifier s;
  s.add_default_concept_rules();
  return s;
}

// ---------------------------------------------------------------------------
// expr basics
// ---------------------------------------------------------------------------

TEST(Expr, ToString) {
  const expr e = E::binary_op("+", E::var("i", "int"), E::int_lit(0));
  EXPECT_EQ(e.to_string(), "(i + 0)");
  const expr c = E::call_fn("concat", {E::var("s", "string"),
                                       E::string_lit("")}, "string");
  EXPECT_EQ(c.to_string(), "concat(s, \"\")");
}

TEST(Expr, TypePropagatesFromOperands) {
  const expr e = E::binary_op("*", E::var("f", "double"), E::double_lit(1.0));
  EXPECT_EQ(e.type(), "double");
}

TEST(Expr, MatchTypedMetavariable) {
  const expr pat = E::binary_op("+", E::meta("x", "int"), E::int_lit(0));
  const expr yes = E::binary_op("+", E::var("i", "int"), E::int_lit(0));
  const expr no = E::binary_op("+", E::var("d", "double"), E::int_lit(0));
  EXPECT_TRUE(yes.match(pat).has_value());
  EXPECT_FALSE(no.match(pat).has_value());
}

TEST(Expr, MatchRepeatedMetavariableRequiresEquality) {
  const expr pat =
      E::binary_op("^", E::meta("x", "unsigned"), E::meta("x", "unsigned"));
  const expr yes = E::binary_op("^", E::var("u", "unsigned"),
                                E::var("u", "unsigned"));
  const expr no =
      E::binary_op("^", E::var("u", "unsigned"), E::var("v", "unsigned"));
  EXPECT_TRUE(yes.match(pat).has_value());
  EXPECT_FALSE(no.match(pat).has_value());
}

TEST(Expr, ParseLiteralPerType) {
  EXPECT_EQ(parse_literal("0", "int").value(), E::int_lit(0));
  EXPECT_EQ(parse_literal("1.0", "double").value(), E::double_lit(1.0));
  EXPECT_EQ(parse_literal("true", "bool").value(), E::bool_lit(true));
  EXPECT_EQ(parse_literal("0xFFFFFFFF", "unsigned").value(),
            E::uint_lit(0xFFFFFFFFull));
  EXPECT_EQ(parse_literal("\"\"", "string").value(), E::string_lit(""));
  EXPECT_EQ(parse_literal("I", "matrix").value(),
            E::constant("I", "matrix"));
  EXPECT_FALSE(parse_literal("zz", "int").has_value());
}

// ---------------------------------------------------------------------------
// Fig. 5, row 1: x + 0 -> x for (type, op) modeling Monoid
// ---------------------------------------------------------------------------

struct fig5_case {
  const char* name;
  expr input;
  expr expected;
};

class Fig5Row1 : public ::testing::TestWithParam<fig5_case> {};

TEST_P(Fig5Row1, GenericMonoidRuleCoversInstance) {
  const simplifier s = default_simplifier();
  std::vector<rewrite_step> trace;
  const expr out = s.simplify(GetParam().input, &trace);
  EXPECT_EQ(out, GetParam().expected) << "got: " << out.to_string();
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace[0].provenance, "Monoid");
}

INSTANTIATE_TEST_SUITE_P(
    Instances, Fig5Row1,
    ::testing::Values(
        fig5_case{"i_times_1",
                  E::binary_op("*", E::var("i", "int"), E::int_lit(1)),
                  E::var("i", "int")},
        fig5_case{"f_times_1",
                  E::binary_op("*", E::var("f", "double"),
                               E::double_lit(1.0)),
                  E::var("f", "double")},
        fig5_case{"b_and_true",
                  E::binary_op("&&", E::var("b", "bool"), E::bool_lit(true)),
                  E::var("b", "bool")},
        fig5_case{"u_bitand_allones",
                  E::binary_op("&", E::var("u", "unsigned"),
                               E::uint_lit(0xFFFFFFFFull)),
                  E::var("u", "unsigned")},
        fig5_case{"concat_empty",
                  E::call_fn("concat",
                             {E::var("s", "string"), E::string_lit("")},
                             "string"),
                  E::var("s", "string")},
        fig5_case{"matmul_identity",
                  E::call_fn("matmul",
                             {E::var("A", "matrix"),
                              E::constant("I", "matrix")},
                             "matrix"),
                  E::var("A", "matrix")},
        fig5_case{"i_plus_0",
                  E::binary_op("+", E::var("i", "int"), E::int_lit(0)),
                  E::var("i", "int")},
        fig5_case{"left_identity_0_plus_i",
                  E::binary_op("+", E::int_lit(0), E::var("i", "int")),
                  E::var("i", "int")}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Fig. 5, row 2: x + (-x) -> 0 for (type, op) modeling Group
// ---------------------------------------------------------------------------

class Fig5Row2 : public ::testing::TestWithParam<fig5_case> {};

TEST_P(Fig5Row2, GenericGroupRuleCoversInstance) {
  simplifier s = default_simplifier();
  s.add_expr_rule(reciprocal_normalization_rule("double"));
  std::vector<rewrite_step> trace;
  const expr out = s.simplify(GetParam().input, &trace);
  EXPECT_EQ(out, GetParam().expected) << "got: " << out.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Instances, Fig5Row2,
    ::testing::Values(
        fig5_case{"i_plus_neg_i",
                  E::binary_op("+", E::var("i", "int"),
                               E::unary_op("-", E::var("i", "int"))),
                  E::int_lit(0)},
        fig5_case{"f_times_recip",
                  E::binary_op("*", E::var("f", "double"),
                               E::binary_op("/", E::double_lit(1.0),
                                            E::var("f", "double"))),
                  E::double_lit(1.0)},
        fig5_case{"xor_self",
                  E::binary_op("^", E::var("u", "unsigned"),
                               E::var("u", "unsigned")),
                  E::uint_lit(0)},
        fig5_case{"left_inverse",
                  E::binary_op("+", E::unary_op("-", E::var("i", "int")),
                               E::var("i", "int")),
                  E::int_lit(0)}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Concept guard: no model, no rewrite
// ---------------------------------------------------------------------------

TEST(Guard, NoRewriteWithoutModel) {
  const simplifier s = default_simplifier();
  // (int, -) is not associative: no Monoid model, so i - 0 must NOT fold.
  const expr e = E::binary_op("-", E::var("i", "int"), E::int_lit(0));
  EXPECT_EQ(s.simplify(e), e);
  // string concat with a non-identity literal.
  const expr c = E::call_fn(
      "concat", {E::var("s", "string"), E::string_lit("x")}, "string");
  EXPECT_EQ(s.simplify(c), c);
  // matmul with a non-identity constant.
  const expr m = E::call_fn(
      "matmul", {E::var("A", "matrix"), E::constant("J", "matrix")},
      "matrix");
  EXPECT_EQ(s.simplify(m), m);
}

TEST(Guard, UnknownTypeIsUntouched) {
  const simplifier s = default_simplifier();
  const expr e =
      E::binary_op("+", E::var("q", "quaternion"), E::int_lit(0));
  EXPECT_EQ(s.simplify(e), e);
}

TEST(Guard, RegistryExtensionEnablesRewrite) {
  // A user-defined type becomes eligible the moment it declares a model —
  // Section 3.2's point 3: optimization comes "for free" with concept
  // analysis of new data types.
  core::concept_registry reg;
  core::register_builtin_concepts(reg);
  simplifier s(reg);
  s.add_default_concept_rules();
  const expr e = E::binary_op("+", E::var("q", "quaternion"),
                              parse_literal("0", "quaternion").value());
  EXPECT_EQ(s.simplify(e), e);  // not yet declared
  reg.declare_model({"Monoid", {"quaternion", "+"},
                     {{"op", "+"}, {"e", "0"}}});
  EXPECT_EQ(s.simplify(e), E::var("q", "quaternion"));
}

// ---------------------------------------------------------------------------
// Nested and cascading rewrites
// ---------------------------------------------------------------------------

TEST(Cascade, IdentitiesCascadeBottomUp) {
  const simplifier s = default_simplifier();
  // ((i + 0) * 1) + (j + (-j))  ->  i
  const expr i = E::var("i", "int");
  const expr j = E::var("j", "int");
  const expr e = E::binary_op(
      "+",
      E::binary_op("*", E::binary_op("+", i, E::int_lit(0)), E::int_lit(1)),
      E::binary_op("+", j, E::unary_op("-", j)));
  EXPECT_EQ(s.simplify(e), i);
}

TEST(Cascade, TraceRecordsEachStep) {
  const simplifier s = default_simplifier();
  const expr i = E::var("i", "int");
  const expr e = E::binary_op(
      "*", E::binary_op("+", i, E::int_lit(0)), E::int_lit(1));
  std::vector<rewrite_step> trace;
  (void)s.simplify(e, &trace);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].rule, "Monoid::right_identity");
  EXPECT_EQ(trace[1].rule, "Monoid::right_identity");
}

// ---------------------------------------------------------------------------
// User extension rules (Section 3.2, LiDIA)
// ---------------------------------------------------------------------------

TEST(UserRules, LidiaInverseSpecialization) {
  simplifier s = default_simplifier();
  s.add_expr_rule(lidia_inverse_rule());
  const expr f = E::var("f", "bigfloat");
  const expr e = E::binary_op("/", E::lit(1.0, "bigfloat"), f);
  const expr out = s.simplify(e);
  EXPECT_EQ(out, E::call_fn("Inverse", {f}, "bigfloat"));
}

TEST(UserRules, UserRulesTakePriorityOverGenericRules) {
  simplifier s = default_simplifier();
  // A (contrived) user rule that rewrites i + 0 to a call; it must win over
  // the generic Monoid rule because library specializations come first.
  s.add_expr_rule({"user:i+0",
                   E::binary_op("+", E::meta("x", "int"), E::int_lit(0)),
                   E::call_fn("noop", {E::meta("x", "int")}, "int"),
                   "user",
                   {}});
  const expr e = E::binary_op("+", E::var("i", "int"), E::int_lit(0));
  const expr out = s.simplify(e);
  EXPECT_EQ(out, E::call_fn("noop", {E::var("i", "int")}, "int"));
}

TEST(UserRules, GuardRestrictsApplication) {
  simplifier s;
  s.add_expr_rule(
      {"guarded",
       E::binary_op("+", E::meta("x", "int"), E::int_lit(0)),
       E::meta("x", "int"),
       "user",
       [](const std::map<std::string, expr>& b) {
         return b.at("x").is(expr::kind::variable);
       }});
  const expr ok = E::binary_op("+", E::var("i", "int"), E::int_lit(0));
  EXPECT_EQ(s.simplify(ok), E::var("i", "int"));
  const expr no = E::binary_op(
      "+", E::binary_op("*", E::var("i", "int"), E::var("j", "int")),
      E::int_lit(0));
  EXPECT_EQ(s.simplify(no), no);
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

TEST(Eval, IntAndBoolAndString) {
  environment env{{"i", std::int64_t{7}}, {"b", true},
                  {"s", std::string("ab")}};
  EXPECT_EQ(std::get<std::int64_t>(evaluate(
                E::binary_op("+", E::var("i", "int"), E::int_lit(3)), env)),
            10);
  EXPECT_EQ(std::get<bool>(evaluate(
                E::binary_op("&&", E::var("b", "bool"), E::bool_lit(false)),
                env)),
            false);
  EXPECT_EQ(std::get<std::string>(evaluate(
                E::call_fn("concat",
                           {E::var("s", "string"), E::string_lit("c")},
                           "string"),
                env)),
            "abc");
}

TEST(Eval, ErrorsOnUnboundAndIllTyped) {
  EXPECT_THROW(evaluate(E::var("missing", "int"), {}), eval_error);
  EXPECT_THROW(evaluate(E::binary_op("&&", E::int_lit(1), E::int_lit(0)), {}),
               eval_error);
  EXPECT_THROW(
      evaluate(E::binary_op("/", E::int_lit(1), E::int_lit(0)), {}),
      eval_error);
}

TEST(Eval, MatrixProductAndInverse) {
  const auto m = std::make_shared<const matrix_value>(
      matrix_value{2, 2, {2, 1, 1, 1}});
  environment env{{"A", m},
                  {"I", std::make_shared<const matrix_value>(
                            matrix_value::identity(2))}};
  // A * inverse(A) == I
  const value prod = evaluate(
      E::call_fn("matmul",
                 {E::var("A", "matrix"),
                  E::call_fn("inverse", {E::var("A", "matrix")}, "matrix")},
                 "matrix"),
      env);
  const auto& got = *std::get<std::shared_ptr<const matrix_value>>(prod);
  const matrix_value id = matrix_value::identity(2);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(got.data[i], id.data[i], 1e-9);
}

// Property test: every rewrite is semantics-preserving under random
// environments.  This is the mechanical justification for "the concept-based
// rules are directly ... derivable from the axioms".
class RewriteSoundness : public ::testing::TestWithParam<unsigned> {};

TEST_P(RewriteSoundness, SimplifyPreservesValue) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::int64_t> ints(-50, 50);
  std::uniform_int_distribution<int> coin(0, 1);

  const simplifier s = default_simplifier();

  // Random int expressions built from +,*,unary- over {i, j, 0, 1}.
  std::function<expr(int)> gen = [&](int depth) -> expr {
    if (depth == 0) {
      switch (coin(rng) * 2 + coin(rng)) {
        case 0:
          return E::var("i", "int");
        case 1:
          return E::var("j", "int");
        case 2:
          return E::int_lit(0);
        default:
          return E::int_lit(1);
      }
    }
    if (coin(rng) == 0)
      return E::unary_op("-", gen(depth - 1));
    return E::binary_op(coin(rng) ? "+" : "*", gen(depth - 1),
                        gen(depth - 1));
  };

  for (int trial = 0; trial < 50; ++trial) {
    const expr e = gen(4);
    const expr simplified = s.simplify(e);
    environment env{{"i", ints(rng)}, {"j", ints(rng)}};
    EXPECT_TRUE(value_equal(evaluate(e, env), evaluate(simplified, env)))
        << e.to_string() << "  vs  " << simplified.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteSoundness,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

TEST(Cost, SimplificationReducesModeledCost) {
  simplifier s = default_simplifier();
  s.add_expr_rule(lidia_inverse_rule());
  const cost_model cm;
  const expr f = E::var("f", "bigfloat");
  const expr division = E::binary_op("/", E::lit(1.0, "bigfloat"), f);
  EXPECT_LT(cm.total(s.simplify(division)), cm.total(division));

  const expr A = E::var("A", "matrix");
  const expr matprod =
      E::call_fn("matmul", {A, E::constant("I", "matrix")}, "matrix");
  EXPECT_EQ(cm.total(s.simplify(matprod)), 0.0);
  EXPECT_EQ(cm.total(matprod), 250.0);
}

// ---------------------------------------------------------------------------
// Generic-vs-enumerated rule accounting (the Fig. 5 comparison)
// ---------------------------------------------------------------------------

TEST(RuleAccounting, TwoGenericRulesCoverTenInstances) {
  simplifier generic;
  generic.add_concept_rule({"Monoid", "right_identity"});
  generic.add_concept_rule({"Group", "right_inverse"});
  generic.add_expr_rule(reciprocal_normalization_rule("double"));
  EXPECT_EQ(generic.concept_rule_count(), 2u);

  const std::vector<expr_rule> enumerated = fig5_instance_rules();
  EXPECT_EQ(enumerated.size(), 10u);

  // Every enumerated-rule input is also simplified by the generic engine.
  const expr inputs[] = {
      E::binary_op("*", E::var("i", "int"), E::int_lit(1)),
      E::binary_op("*", E::var("f", "double"), E::double_lit(1.0)),
      E::binary_op("&&", E::var("b", "bool"), E::bool_lit(true)),
      E::binary_op("&", E::var("u", "unsigned"),
                   E::uint_lit(0xFFFFFFFFull)),
      E::call_fn("concat", {E::var("s", "string"), E::string_lit("")},
                 "string"),
      E::call_fn("matmul",
                 {E::var("A", "matrix"), E::constant("I", "matrix")},
                 "matrix"),
      E::binary_op("+", E::var("i", "int"),
                   E::unary_op("-", E::var("i", "int"))),
      E::binary_op("*", E::var("f", "double"),
                   E::binary_op("/", E::double_lit(1.0),
                                E::var("f", "double"))),
  };
  for (const expr& e : inputs)
    EXPECT_NE(generic.simplify(e), e) << "not simplified: " << e.to_string();
}

}  // namespace
}  // namespace cgp::rewrite
