// Conformance suite for the CSR topology module (DESIGN.md §13): fuzzed
// structural invariants and a differential oracle against the legacy
// per-node-vector adjacency construction.
//
// Properties:
//   * `from_edges` on ARBITRARY edge lists (self-loops, duplicates in both
//     orientations, disconnected components, hub/chain degree profiles)
//     produces a well-formed CSR: monotone offsets, sorted strictly-unique
//     self-loop-free rows, symmetric adjacency — and its rows are exactly
//     the legacy construction's rows for the same input.
//   * Every `build_topology(topo, n, seed)` matches the reference built
//     from `build_edge_list` on the same seed, and consumes the rng
//     identically (the uid shuffle that follows must see the same stream).
//   * Degree-distribution shape checks per builder: star/complete degrees,
//     random_regular's <= 4 cap, connectivity of the connected-by-
//     construction builders.
// Failures print a CGP_CHECK_SEED reproduction line and shrink to a
// minimal case via check/topology_gen.hpp.
#include <algorithm>
#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "check/gtest_support.hpp"
#include "check/property.hpp"
#include "check/topology_gen.hpp"
#include "distributed/topology.hpp"

namespace check = cgp::check;
namespace dist = cgp::distributed;

CGP_REGISTER_SEED_BANNER();

namespace {

/// Structural CSR invariants: sized/monotone offsets, rows sorted with no
/// duplicates or self-loops, every endpoint in range, symmetric adjacency,
/// and edge accounting (each undirected edge stored exactly twice).
testing::AssertionResult csr_well_formed(const dist::csr_topology& t,
                                         std::size_t nodes) {
  const auto& off = t.offsets();
  const auto& edges = t.edges();
  if (off.size() != nodes + 1 || off.front() != 0)
    return testing::AssertionFailure() << "offsets shape wrong";
  for (std::size_t v = 0; v < nodes; ++v)
    if (off[v] > off[v + 1])
      return testing::AssertionFailure() << "offsets not monotone at " << v;
  if (off.back() != edges.size())
    return testing::AssertionFailure() << "offsets do not cover edges array";
  if (edges.size() % 2 != 0 || t.edge_count() * 2 != edges.size())
    return testing::AssertionFailure() << "edge accounting off";
  for (std::size_t v = 0; v < nodes; ++v) {
    const auto row = t.neighbors(v);
    if (row.size() != t.degree(v))
      return testing::AssertionFailure() << "degree mismatch at " << v;
    for (std::size_t k = 0; k < row.size(); ++k) {
      const int nb = row[k];
      if (nb < 0 || static_cast<std::size_t>(nb) >= nodes)
        return testing::AssertionFailure()
               << "neighbor " << nb << " of " << v << " out of range";
      if (nb == static_cast<int>(v))
        return testing::AssertionFailure() << "self-loop at " << v;
      if (k > 0 && row[k - 1] >= nb)
        return testing::AssertionFailure()
               << "row of " << v << " not strictly sorted";
      if (!t.is_adjacent(nb, static_cast<int>(v)))
        return testing::AssertionFailure()
               << "asymmetric edge " << v << " -> " << nb;
    }
  }
  return testing::AssertionSuccess();
}

/// CSR rows == legacy rows (both sorted + deduped, so plain equality IS
/// permutation equality of the underlying multisets).
bool matches_reference(const dist::csr_topology& t,
                       const std::vector<std::vector<int>>& ref) {
  if (t.node_count() != ref.size()) return false;
  for (std::size_t v = 0; v < ref.size(); ++v) {
    const auto row = t.neighbors(v);
    if (!std::equal(row.begin(), row.end(), ref[v].begin(), ref[v].end()))
      return false;
  }
  return true;
}

bool connected(const dist::csr_topology& t) {
  const std::size_t n = t.node_count();
  if (n == 0) return true;
  std::vector<char> seen(n, 0);
  std::queue<std::size_t> q;
  q.push(0);
  seen[0] = 1;
  std::size_t visited = 1;
  while (!q.empty()) {
    const std::size_t v = q.front();
    q.pop();
    for (const int nb : t.neighbors(v))
      if (!seen[static_cast<std::size_t>(nb)]) {
        seen[static_cast<std::size_t>(nb)] = 1;
        ++visited;
        q.push(static_cast<std::size_t>(nb));
      }
  }
  return visited == n;
}

}  // namespace

TEST(TopologyFuzz, FromEdgesInvariantsAndReferenceParity) {
  const auto res = check::for_all<check::edge_list_case>(
      "topology.csr.from_edges",
      [](const check::edge_list_case& c) {
        const auto t = dist::csr_topology::from_edges(c.nodes, c.edges);
        if (!csr_well_formed(t, c.nodes)) return false;
        return matches_reference(
            t, dist::build_adjacency_reference(c.nodes, c.edges));
      });
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(TopologyFuzz, BuildersMatchLegacyConstructionOnSameSeed) {
  const auto res = check::for_all<check::topology_case>(
      "topology.csr.builder_reference_parity",
      [](const check::topology_case& c) {
        std::mt19937 rng_list(c.seed);
        const auto edge_list =
            dist::build_edge_list(c.topo, c.nodes, rng_list);
        std::mt19937 rng_csr(c.seed);
        const auto t = dist::build_topology(c.topo, c.nodes, rng_csr);
        if (rng_list != rng_csr) return false;  // divergent rng consumption
        if (!csr_well_formed(t, c.nodes)) return false;
        return matches_reference(
            t, dist::build_adjacency_reference(c.nodes, edge_list));
      });
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(TopologyFuzz, DegreeDistributionsPerBuilder) {
  const auto res = check::for_all<check::topology_case>(
      "topology.csr.degree_distributions",
      [](const check::topology_case& c) {
        std::mt19937 rng(c.seed);
        const auto t = dist::build_topology(c.topo, c.nodes, rng);
        const std::size_t n = c.nodes;
        switch (c.topo) {
          case dist::topology::ring:
          case dist::topology::line:
            for (std::size_t v = 0; v < n; ++v)
              if (t.degree(v) > 2) return false;
            return connected(t);
          case dist::topology::complete:
            for (std::size_t v = 0; v < n; ++v)
              if (t.degree(v) != n - 1) return false;
            return connected(t);
          case dist::topology::star:
            if (n > 1 && t.degree(0) != n - 1) return false;
            for (std::size_t v = 1; v < n; ++v)
              if (t.degree(v) != 1) return false;
            return connected(t);
          case dist::topology::grid:
          case dist::topology::torus:
            for (std::size_t v = 0; v < n; ++v)
              if (t.degree(v) > 4) return false;
            return connected(t);
          case dist::topology::random_connected:
          case dist::topology::power_law:
            // Connected by construction (spanning tree / preferential
            // attachment to the existing component).
            return connected(t);
          case dist::topology::random_regular:
            // Stub pairing caps realized degrees at 4 (loops and
            // duplicate pairs are stripped); connectivity is only
            // high-probability, so it is NOT asserted.
            for (std::size_t v = 0; v < n; ++v)
              if (t.degree(v) > 4) return false;
            return true;
        }
        return false;
      });
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(TopologyFuzz, ShrinkingProducesMinimalCounterexample) {
  // Plant a falsifiable property — "no node ever reaches degree 3" — and
  // check the shrinker walks the failing case down to a small one instead
  // of reporting the raw random graph.
  check::config cfg;
  cfg.cases = 60;
  const auto res = check::for_all<check::edge_list_case>(
      "topology.csr.shrink_demo",
      [](const check::edge_list_case& c) {
        const auto t = dist::csr_topology::from_edges(c.nodes, c.edges);
        for (std::size_t v = 0; v < c.nodes; ++v)
          if (t.degree(v) >= 3) return false;
        return true;
      },
      cfg);
  ASSERT_TRUE(res.falsified) << "generator never built a degree-3 node";
  // The minimal witness needs only a hub with three distinct neighbors:
  // shrinking must land at or very near that 3-edge graph.
  EXPECT_GT(res.shrink_steps, 0u);
  ASSERT_EQ(res.counterexample.size(), 1u);
}

TEST(TopologyBasics, SingleNodeAndEmptyRows) {
  std::mt19937 rng(7);
  for (const auto topo : dist::all_topologies()) {
    const auto t = dist::build_topology(topo, 1, rng);
    EXPECT_EQ(t.node_count(), 1u) << dist::to_string(topo);
    EXPECT_EQ(t.degree(0), 0u) << dist::to_string(topo);  // loops stripped
    EXPECT_FALSE(t.is_adjacent(0, 0)) << dist::to_string(topo);
  }
  const dist::csr_topology empty;
  EXPECT_EQ(empty.node_count(), 0u);
  EXPECT_EQ(empty.edge_count(), 0u);
}

TEST(TopologyBasics, FromEdgesRejectsOutOfRangeEndpoints) {
  const std::vector<std::pair<int, int>> bad = {{0, 3}};
  EXPECT_THROW(dist::csr_topology::from_edges(3, bad), std::invalid_argument);
  const std::vector<std::pair<int, int>> negative = {{-1, 0}};
  EXPECT_THROW(dist::csr_topology::from_edges(3, negative),
               std::invalid_argument);
}
