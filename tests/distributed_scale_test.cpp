// Million-node scale suite (ISSUE: scale src/distributed to millions of
// simulated nodes).  Three kinds of coverage:
//
//   * An ungated allocation regression: `run_stats` per-node queries must be
//     O(1) views, never O(n) copies.  The binary replaces global operator
//     new/delete with counting shims and asserts that a full set of stats
//     queries against a MILLION-node network allocates (almost) nothing —
//     a reintroduced vector-by-value accessor costs ~8 MB per call and
//     trips the gate by three orders of magnitude.
//
//   * `slow`-labelled full runs at n = 1,000,000: a ring heartbeat failure
//     detection run (crash a node, expect exactly its two ring neighbors to
//     suspect it, nobody else) and a three-way sim/parallel/inproc parity
//     check of flooding over a random connected graph with faults.  These
//     are skipped unless CGP_RUN_SLOW=1 (ctest labels them `slow`, CI runs
//     them in a dedicated step) so tier-1 stays fast.
#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <type_traits>
#include <utility>

#include <gtest/gtest.h>

#include "distributed/algorithms.hpp"
#include "distributed/inproc_transport.hpp"
#include "distributed/network.hpp"
#include "distributed/parallel_transport.hpp"

namespace dist = cgp::distributed;

// ---------------------------------------------------------------------------
// Counting allocator shims (whole-binary; tests read the deltas)
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::size_t> g_alloc_bytes{0};
std::atomic<std::size_t> g_alloc_calls{0};

void* counted_alloc(std::size_t size) {
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

constexpr std::size_t kMillion = 1'000'000;

bool slow_enabled() {
  const char* v = std::getenv("CGP_RUN_SLOW");
  return v != nullptr && *v != '\0' && *v != '0';
}

#define CGP_REQUIRE_SLOW()                                               \
  do {                                                                   \
    if (!slow_enabled())                                                 \
      GTEST_SKIP() << "set CGP_RUN_SLOW=1 to run million-node scenarios" \
                      " (ctest label: slow)";                            \
  } while (false)

}  // namespace

TEST(MillionNodeStats, QueriesDoNotCopyPerNodeArrays) {
  // Construction sizes the three per-node arrays at n entries; from then on
  // every stats query must be a view or a scalar.
  dist::net_options opts;
  opts.nodes = kMillion;
  opts.topo = dist::topology::ring;
  opts.seed = 11;
  dist::sim_transport net(opts);

  const dist::run_stats& st = net.stats();
  ASSERT_EQ(st.messages_sent_per_node.size(), kMillion);

  const std::size_t bytes_before =
      g_alloc_bytes.load(std::memory_order_relaxed);
  const auto sent = st.sent_span();
  const auto received = st.received_span();
  const auto steps = st.local_steps_span();
  const std::size_t sent_mid = net.stats().messages_sent_by(123'456);
  const std::size_t recv_mid = net.stats().messages_received_by(999'999);
  const std::size_t beats = st.messages_for("beat");
  const std::size_t bytes_after = g_alloc_bytes.load(std::memory_order_relaxed);

  // The accessors return views over the live arrays...
  EXPECT_EQ(&net.stats(), &st);  // stats() hands out a reference, not a copy
  EXPECT_EQ(sent.data(), st.messages_sent_per_node.data());
  EXPECT_EQ(received.data(), st.messages_received_per_node.data());
  EXPECT_EQ(steps.data(), st.local_steps_per_node.data());
  EXPECT_EQ(sent.size(), kMillion);
  EXPECT_EQ(sent_mid + recv_mid + beats, 0u);  // nothing ran yet

  // ...and allocate nothing proportional to n.  An O(n) copy of even ONE
  // array is 8 MB; allow a small constant slack for the std::string key.
  EXPECT_LT(bytes_after - bytes_before, 4096u)
      << "stats queries on a million-node network must not clone per-node "
         "arrays";
}

TEST(MillionNodeRuns, RingHeartbeatDetectsTheOneCrashedNode) {
  CGP_REQUIRE_SLOW();
  constexpr int kVictim = 123'456;
  dist::net_options opts;
  opts.nodes = kMillion;
  opts.topo = dist::topology::ring;
  opts.seed = 29;
  dist::sim_transport net(opts);
  net.spawn(dist::heartbeat_detector(/*timeout_rounds=*/1));
  net.crash(kVictim, /*round=*/2);
  const auto stats = net.run(/*max_rounds=*/4);

  // Heartbeats never quiesce: the run exhausts its round budget.
  EXPECT_EQ(stats.rounds, 5u);
  EXPECT_GT(stats.messages_total, 7'000'000u);  // ~2M beats per round
  EXPECT_TRUE(net.is_down(kVictim));

  // Exactly the victim's two ring neighbors suspect it — nobody else
  // suspects anybody across all million nodes.
  std::map<std::pair<int, std::string>, long> suspicions;
  for (const auto& [key, value] : net.all_decisions())
    if (key.second.starts_with("suspects:")) suspicions.emplace(key, value);
  const std::string victim_key = "suspects:" + std::to_string(kVictim);
  ASSERT_EQ(suspicions.size(), 2u);
  EXPECT_EQ(suspicions.count({kVictim - 1, victim_key}), 1u);
  EXPECT_EQ(suspicions.count({kVictim + 1, victim_key}), 1u);
}

TEST(MillionNodeRuns, ThreeWayFloodingParityOnRandomConnected) {
  CGP_REQUIRE_SLOW();
  dist::net_options opts;
  opts.nodes = kMillion;
  opts.topo = dist::topology::random_connected;
  opts.seed = 31;
  opts.workers = 4;
  opts.faults.drop = 0.02;
  opts.faults.duplicate = 0.02;
  const auto factory = dist::flooding_broadcast(0);

  const auto run_one = [&]<class Transport>(std::type_identity<Transport>) {
    Transport net(opts);
    net.spawn(factory);
    const auto stats = net.run(/*max_rounds=*/200);
    return std::pair{stats, net.all_decisions()};
  };
  const auto sim = run_one(std::type_identity<dist::sim_transport>{});
  const auto par = run_one(std::type_identity<dist::parallel_transport>{});
  const auto inp = run_one(std::type_identity<dist::inproc_transport>{});

  EXPECT_GT(sim.first.messages_total, kMillion);  // the flood really spread
  EXPECT_EQ(sim.second, par.second);
  EXPECT_EQ(sim.second, inp.second);
  EXPECT_EQ(sim.first.messages_total, par.first.messages_total);
  EXPECT_EQ(sim.first.messages_total, inp.first.messages_total);
  EXPECT_EQ(sim.first.rounds, par.first.rounds);
  EXPECT_EQ(sim.first.rounds, inp.first.rounds);
  EXPECT_EQ(sim.first.messages_dropped, par.first.messages_dropped);
  EXPECT_EQ(sim.first.messages_dropped, inp.first.messages_dropped);
  EXPECT_EQ(sim.first.messages_sent_per_node, par.first.messages_sent_per_node);
  EXPECT_EQ(sim.first.messages_sent_per_node, inp.first.messages_sent_per_node);
  EXPECT_EQ(sim.first.messages_received_per_node,
            par.first.messages_received_per_node);
  EXPECT_EQ(sim.first.messages_received_per_node,
            inp.first.messages_received_per_node);
}
