// Property-style sweeps over STLlint's invalidation semantics: every
// (container kind, mutating operation) pair is checked against the
// concept-level specification table, plus the loop-pass ablation showing
// why Fig. 4's bug needs at least two abstract iterations.
#include <gtest/gtest.h>

#include <string>

#include "stllint/stllint.hpp"

namespace cgp::stllint {
namespace {

struct invalidation_case {
  const char* name;
  const char* container;  ///< "vector", "deque", "list", "set"
  const char* mutation;   ///< statement performed while an iterator is live
  bool expect_invalidated;
};

class InvalidationMatrix : public ::testing::TestWithParam<invalidation_case> {
};

TEST_P(InvalidationMatrix, MatchesSpecTable) {
  const auto& p = GetParam();
  // `other` is a second iterator; the mutation may reference `it`/`other`.
  const std::string source = std::string("void f(") + p.container +
                             "<int>& c) {\n" + "  " + p.container +
                             "<int>::iterator it = c.begin();\n  " +
                             p.container + "<int>::iterator other = c.begin();\n" +
                             "  ++other;\n" + "  " + p.mutation + ";\n" +
                             "  use(*it);\n}\n";
  const lint_result r = lint_source(source);
  bool warned = false;
  for (const diagnostic& d : r.diags)
    if (d.sev == severity::warning &&
        d.message.find("singular iterator") != std::string::npos)
      warned = true;
  EXPECT_EQ(warned, p.expect_invalidated) << source << "\n" << r.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Table, InvalidationMatrix,
    ::testing::Values(
        // vector: everything invalidates everything.
        invalidation_case{"vector_push_back", "vector", "c.push_back(1)",
                          true},
        invalidation_case{"vector_insert", "vector", "c.insert(other, 1)",
                          true},
        invalidation_case{"vector_erase_other", "vector", "c.erase(other)",
                          true},
        invalidation_case{"vector_clear", "vector", "c.clear()", true},
        invalidation_case{"vector_reserve", "vector", "c.reserve(100)", true},
        invalidation_case{"vector_size_query", "vector", "c.size()", false},
        // deque behaves like vector for middle mutations.
        invalidation_case{"deque_push_back", "deque", "c.push_back(1)", true},
        invalidation_case{"deque_erase_other", "deque", "c.erase(other)",
                          true},
        // list: node-based; only the erased iterator dies.
        invalidation_case{"list_push_back", "list", "c.push_back(1)", false},
        invalidation_case{"list_insert", "list", "c.insert(other, 1)", false},
        invalidation_case{"list_erase_other", "list", "c.erase(other)",
                          false},
        invalidation_case{"list_erase_self", "list", "c.erase(it)", true},
        invalidation_case{"list_clear", "list", "c.clear()", true},
        // set: node-based too.
        invalidation_case{"set_insert", "set", "c.insert(1)", false},
        invalidation_case{"set_erase_self", "set", "c.erase(it)", true}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------------------
// swap retargeting
// ---------------------------------------------------------------------------

TEST(Swap, IteratorsFollowTheSwappedStorage) {
  // After a.swap(b), iterators into `a` point into `b`'s elements: erasing
  // through b must invalidate them, erasing through a must not.
  const lint_result r = lint_source(R"(
void f(vector<int>& a, vector<int>& b) {
  vector<int>::iterator it = a.begin();
  a.swap(b);
  b.push_back(1);
  use(*it);
}
)");
  bool warned = false;
  for (const diagnostic& d : r.diags)
    if (d.message.find("singular iterator") != std::string::npos)
      warned = true;
  EXPECT_TRUE(warned) << r.to_string();

  const lint_result ok = lint_source(R"(
void f(vector<int>& a, vector<int>& b) {
  vector<int>::iterator it = a.begin();
  a.swap(b);
  a.push_back(1);
  use(*it);
}
)");
  EXPECT_EQ(std::count_if(ok.diags.begin(), ok.diags.end(),
                          [](const diagnostic& d) {
                            return d.message.find("singular") !=
                                   std::string::npos;
                          }),
            0)
      << ok.to_string();
}

TEST(Resize, UpdatesSizeInterval) {
  const lint_result r = lint_source(R"(
void f() {
  vector<int> v;
  v.resize(10);
  use(*v.begin());
}
)");
  // After resize(10) the container is non-empty: begin() dereference is OK.
  EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(Advance, PastTheEndIncrementWarns) {
  const lint_result r = lint_source(R"(
void f(vector<int>& v) {
  vector<int>::iterator it = v.end();
  ++it;
}
)");
  bool warned = false;
  for (const diagnostic& d : r.diags)
    if (d.message.find("advance a past-the-end iterator") !=
        std::string::npos)
      warned = true;
  EXPECT_TRUE(warned) << r.to_string();
}

TEST(Advance, NormalLoopIncrementStaysClean) {
  const lint_result r = lint_source(R"(
void f(vector<int>& v) {
  for (vector<int>::iterator it = v.begin(); it != v.end(); ++it) {
    use(*it);
  }
}
)");
  EXPECT_TRUE(r.clean()) << r.to_string();
}

// ---------------------------------------------------------------------------
// Ablation: loop-pass budget (Fig. 4 needs >= 2 abstract iterations)
// ---------------------------------------------------------------------------

constexpr const char* kFig4 = R"(
vector<student_info> extract_fails(vector<student_info>& students) {
  vector<student_info> fail;
  vector<student_info>::iterator iter = students.begin();
  while (iter != students.end()) {
    if (fgrade(*iter)) {
      fail.push_back(*iter);
      students.erase(iter);
    } else
      ++iter;
  }
  return fail;
}
)";

class LoopPassAblation : public ::testing::TestWithParam<int> {};

TEST_P(LoopPassAblation, DetectionRequiresAtLeastTwoPasses) {
  options opt;
  opt.max_loop_passes = GetParam();
  const lint_result r = lint_source(kFig4, opt);
  bool detected = false;
  for (const diagnostic& d : r.diags)
    if (d.message.find("dereference a singular iterator") !=
        std::string::npos)
      detected = true;
  EXPECT_EQ(detected, GetParam() >= 2)
      << "passes=" << GetParam() << "\n"
      << r.to_string();
}

INSTANTIATE_TEST_SUITE_P(Budgets, LoopPassAblation,
                         ::testing::Values(1, 2, 3, 6));

}  // namespace
}  // namespace cgp::stllint
