// Tests for the textual rewrite-expression front end.
#include <gtest/gtest.h>

#include "rewrite/engine.hpp"
#include "rewrite/eval.hpp"
#include "rewrite/parser.hpp"

namespace cgp::rewrite {
namespace {

using E = expr;
const std::map<std::string, std::string> kIntEnv{{"i", "int"}, {"j", "int"}};

TEST(Parser, LiteralsAndVariables) {
  EXPECT_EQ(parse_expr("42", {}), E::int_lit(42));
  EXPECT_EQ(parse_expr("1.5", {}), E::double_lit(1.5));
  EXPECT_EQ(parse_expr("0xFF", {}), E::uint_lit(0xFF));
  EXPECT_EQ(parse_expr("true", {}), E::bool_lit(true));
  EXPECT_EQ(parse_expr("\"hi\"", {}), E::string_lit("hi"));
  EXPECT_EQ(parse_expr("i", kIntEnv), E::var("i", "int"));
}

TEST(Parser, PrecedenceAndParens) {
  // i + j * 2 parses as i + (j * 2).
  const expr e = parse_expr("i + j * 2", kIntEnv);
  ASSERT_TRUE(e.is(expr::kind::binary));
  EXPECT_EQ(e.symbol(), "+");
  EXPECT_EQ(e.children()[1].symbol(), "*");
  // (i + j) * 2 respects the parens.
  const expr p = parse_expr("(i + j) * 2", kIntEnv);
  EXPECT_EQ(p.symbol(), "*");
  EXPECT_EQ(p.children()[0].symbol(), "+");
}

TEST(Parser, UnaryAndCalls) {
  EXPECT_EQ(parse_expr("-i", kIntEnv),
            E::unary_op("-", E::var("i", "int")));
  const expr c = parse_expr("concat(s, \"\")", {{"s", "string"}});
  EXPECT_EQ(c, E::call_fn("concat",
                          {E::var("s", "string"), E::string_lit("")},
                          "string"));
}

TEST(Parser, MetavariablesMakePatterns) {
  const expr pat = parse_expr("?x + 0", {{"?x", "int"}});
  const expr subject = parse_expr("(i * j) + 0", kIntEnv);
  const auto binding = subject.match(pat);
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->at("x").to_string(), "(i * j)");
}

TEST(Parser, ParsedExpressionsSimplifyAndEvaluate) {
  simplifier s;
  s.add_default_concept_rules();
  const expr e = parse_expr("(i + 0) * 1 + (j + -j)", kIntEnv);
  EXPECT_EQ(s.simplify(e), E::var("i", "int"));
  const environment env{{"i", std::int64_t{4}}, {"j", std::int64_t{9}}};
  EXPECT_EQ(std::get<std::int64_t>(evaluate(e, env)), 4);
}

TEST(Parser, ParseRuleRoundTrip) {
  simplifier s;
  s.add_expr_rule(parse_rule("user:square", "?x * ?x", "square(?x)",
                             {{"?x", "int"}, {"square", "int"}}));
  const expr e = parse_expr("i * i", kIntEnv);
  EXPECT_EQ(s.simplify(e).to_string(), "square(i)");
}

TEST(Parser, Errors) {
  EXPECT_THROW((void)parse_expr("i +", kIntEnv), parse_error);
  EXPECT_THROW((void)parse_expr("(i", kIntEnv), parse_error);
  EXPECT_THROW((void)parse_expr("\"unterminated", {}), parse_error);
  EXPECT_THROW((void)parse_expr("?x", {}), parse_error);  // untyped meta
  EXPECT_THROW((void)parse_expr("i @ j", kIntEnv), parse_error);
  EXPECT_THROW((void)parse_expr("i j", kIntEnv), parse_error);
}

TEST(Parser, UnmappedIdentifierBecomesNamedConstant) {
  const expr e = parse_expr("matmul(A, I)", {{"A", "matrix"}});
  EXPECT_EQ(e.children()[1].node_kind(), expr::kind::named_const);
  // ... which is exactly what the Monoid rule folds.
  simplifier s;
  s.add_default_concept_rules();
  EXPECT_EQ(s.simplify(e), E::var("A", "matrix"));
}

}  // namespace
}  // namespace cgp::rewrite
