// Conformance suite: differential testing of the Simplicissimus rewrite
// pipeline.  Soundness here means `eval(e) == eval(simplify(e))` — the
// simplifier may only fire rules whose axioms the operand types actually
// model.  Three oracles:
//  1. whole-pipeline differential over randomized typed expressions;
//  2. per-rule `eval(lhs) == eval(rhs)` over generated metavariable
//     bindings, for every shipped expr_rule (Fig. 5 instances, derived
//     theorems, LiDIA user rule, reciprocal normalization);
//  3. the planted unsound model: a simplifier armed with a wrong
//     Monoid{int,-} declaration must be caught by oracle 1.
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "check/expr_gen.hpp"
#include "check/gtest_support.hpp"
#include "check/property.hpp"
#include "core/registry.hpp"
#include "rewrite/engine.hpp"
#include "rewrite/eval.hpp"
#include "rewrite/expr.hpp"
#include "rewrite/rules.hpp"

namespace check = cgp::check;
namespace core = cgp::core;
namespace rewrite = cgp::rewrite;

CGP_REGISTER_SEED_BANNER();

namespace {

/// Tolerant value comparison: rewrites that reassociate reciprocals or
/// matrix inverses are sound over the reals but land within a few ulps in
/// floating point; everything else must agree exactly.
bool values_agree(const rewrite::value& a, const rewrite::value& b) {
  if (std::holds_alternative<double>(a) && std::holds_alternative<double>(b)) {
    const double x = std::get<double>(a), y = std::get<double>(b);
    if (x == y) return true;
    if (!std::isfinite(x) || !std::isfinite(y)) return false;
    return std::fabs(x - y) <=
           1e-9 * std::max({std::fabs(x), std::fabs(y), 1.0});
  }
  using mat = std::shared_ptr<const rewrite::matrix_value>;
  if (std::holds_alternative<mat>(a) && std::holds_alternative<mat>(b)) {
    const auto& ma = *std::get<mat>(a);
    const auto& mb = *std::get<mat>(b);
    if (ma.rows != mb.rows || ma.cols != mb.cols) return false;
    for (std::size_t i = 0; i < ma.data.size(); ++i)
      if (std::fabs(ma.data[i] - mb.data[i]) > 1e-6) return false;
    return true;
  }
  return rewrite::value_equal(a, b);
}

/// Differential oracle over randomized expressions of one type.
check::result differential(const rewrite::simplifier& simp,
                           const std::string& type, std::size_t* fired,
                           const check::config& cfg = {}) {
  return check::for_all<std::uint64_t>(
      "simplify.differential[" + type + "]",
      [&simp, &type, fired](std::uint64_t raw) {
        check::random_source rs(raw);
        const auto g = check::generate_expr(rs, type);
        rewrite::value before;
        try {
          before = rewrite::evaluate(g.e, g.env);
        } catch (const rewrite::eval_error&) {
          throw check::discard_case{};  // e.g. reciprocal of zero
        }
        const rewrite::expr after = simp.simplify(g.e);
        if (fired && after != g.e) ++*fired;
        // The original evaluated, so the simplified form must too: a rewrite
        // that introduces an evaluation error is itself unsound.
        return values_agree(before, rewrite::evaluate(after, g.env));
      },
      cfg);
}

void collect_metavariables(const rewrite::expr& e,
                           std::map<std::string, std::string>* out) {
  if (e.is(rewrite::expr::kind::metavariable)) (*out)[e.symbol()] = e.type();
  for (const rewrite::expr& c : e.children()) collect_metavariables(c, out);
}

bool mentions_constant(const rewrite::expr& e, const std::string& name) {
  if (e.is(rewrite::expr::kind::named_const) && e.symbol() == name)
    return true;
  for (const rewrite::expr& c : e.children())
    if (mentions_constant(c, name)) return true;
  return false;
}

rewrite::expr random_literal(check::random_source& rs,
                             const std::string& type) {
  using rewrite::expr;
  if (type == "int")
    return expr::int_lit(check::detail::small_biased_int(rs));
  if (type == "unsigned")
    return expr::uint_lit(check::arbitrary<std::uint64_t>::generate(rs));
  if (type == "bool") return expr::bool_lit(rs.chance(50));
  if (type == "string")
    return expr::string_lit(check::arbitrary<std::string>::generate(rs));
  if (type == "matrix") {
    auto m = std::make_shared<rewrite::matrix_value>();
    m->rows = m->cols = 2;
    m->data.resize(4);
    for (double& d : m->data)
      d = static_cast<double>(rs.int_in(-4, 4));
    return expr::lit(rewrite::value(std::move(m)), "matrix");
  }
  // double, rational, bigfloat: dyadic double carriers.
  return expr::lit(rewrite::value(check::arbitrary<double>::generate(rs)),
                   type);
}

/// Per-rule oracle: lhs and rhs of the rule must evaluate equal under every
/// generated binding of the pattern's metavariables.
check::result rule_soundness(const rewrite::expr_rule& rule) {
  std::map<std::string, std::string> metas;
  collect_metavariables(rule.pattern, &metas);
  // The symbolic identity matrix has no intrinsic size: bind it to I_2 to
  // match the generated 2x2 matrix literals.
  rewrite::environment env;
  if (mentions_constant(rule.pattern, "I") ||
      mentions_constant(rule.replacement, "I")) {
    env.emplace("I", rewrite::value(std::make_shared<rewrite::matrix_value>(
                         rewrite::matrix_value::identity(2))));
  }
  return check::for_all<std::uint64_t>(
      "rule[" + rule.name + "]",
      [&rule, metas, env](std::uint64_t raw) {
        check::random_source rs(raw);
        std::map<std::string, rewrite::expr> binding;
        for (const auto& [name, type] : metas)
          binding.emplace(name, random_literal(rs, type));
        if (rule.guard && !rule.guard(binding)) throw check::discard_case{};
        try {
          const rewrite::value l =
              rewrite::evaluate(rule.pattern.substitute(binding), env);
          const rewrite::value r =
              rewrite::evaluate(rule.replacement.substitute(binding), env);
          // Double division by zero evaluates to inf rather than throwing;
          // such samples are outside the rule's domain (f != 0 in Fig. 5's
          // `f * (1.0/f) -> 1.0`), like the throwing cases below.
          for (const rewrite::value* v : {&l, &r})
            if (const auto* d = std::get_if<double>(v); d && !std::isfinite(*d))
              throw check::discard_case{};
          return values_agree(l, r);
        } catch (const rewrite::eval_error&) {
          // Integer division by zero, singular matrix: outside the domain.
          throw check::discard_case{};
        }
      },
      {});
}

}  // namespace

TEST(RewriteConformance, DefaultSimplifierIsSoundOnRandomizedExpressions) {
  rewrite::simplifier simp;
  simp.add_default_concept_rules();
  simp.enable_constant_folding();

  std::size_t fired = 0;
  for (const char* type : {"int", "unsigned", "double"}) {
    const auto res = differential(simp, type, &fired);
    EXPECT_TRUE(res.ok) << res.message;
    EXPECT_EQ(res.cases_run, check::config{}.cases);
  }
  // The oracle must have exercised actual rewrites, not only fixpoints —
  // a differential test that never sees a rule fire proves nothing.
  EXPECT_GT(fired, 0u);
}

TEST(RewriteConformance, InstanceRulesWithUserExtensionsStaySound) {
  rewrite::simplifier simp;
  simp.add_default_concept_rules();
  for (auto& r : rewrite::fig5_instance_rules()) simp.add_expr_rule(r);
  for (auto& r : rewrite::derived_theorem_rules()) simp.add_expr_rule(r);
  simp.add_expr_rule(rewrite::reciprocal_normalization_rule("double"));

  std::size_t fired = 0;
  for (const char* type : {"int", "unsigned", "double"}) {
    const auto res = differential(simp, type, &fired);
    EXPECT_TRUE(res.ok) << res.message;
  }
  EXPECT_GT(fired, 0u);
}

TEST(RewriteConformance, EveryShippedExprRuleIsSound) {
  std::vector<rewrite::expr_rule> rules = rewrite::fig5_instance_rules();
  for (auto& r : rewrite::derived_theorem_rules())
    rules.push_back(std::move(r));
  rules.push_back(rewrite::lidia_inverse_rule());
  rules.push_back(rewrite::reciprocal_normalization_rule("double"));
  rules.push_back(rewrite::reciprocal_normalization_rule("rational"));

  std::size_t checked = 0;
  for (const auto& rule : rules) {
    const auto res = rule_soundness(rule);
    EXPECT_TRUE(res.ok) << res.message;
    EXPECT_GT(res.cases_run, 0u) << rule.name;
    ++checked;
  }
  // Fig. 5 alone contributes ten instances; the full shipped set is larger.
  EXPECT_GE(checked, 15u);
}

TEST(RewriteConformance, SimplifierArmedWithWrongModelIsCaught) {
  // A registry that (wrongly) declares Monoid{int, -} with identity 0:
  // the generic left-identity rule instantiates to the unsound 0 - x -> x.
  core::concept_registry bad_reg;
  core::register_builtin_concepts(bad_reg);
  core::model_declaration bad;
  bad.concept_name = "Monoid";
  bad.arguments = {"int", "-"};
  bad.symbol_binding = {{"op", "-"}, {"e", "0"}};
  bad_reg.declare_model(bad);

  rewrite::simplifier simp(bad_reg);
  simp.add_default_concept_rules();

  const auto res = check::for_all<std::int64_t>(
      "simplify.differential.catches_bad_model",
      [&simp](std::int64_t x) {
        const rewrite::expr e = rewrite::expr::binary_op(
            "-", rewrite::expr::int_lit(0), rewrite::expr::int_lit(x), "int");
        return values_agree(rewrite::evaluate(e, {}),
                            rewrite::evaluate(simp.simplify(e), {}));
      });
  ASSERT_TRUE(res.falsified)
      << "the unsound rule 0 - x -> x was never caught";
  // Minimal witness: any nonzero x; shrinking lands on |x| == 1.
  ASSERT_EQ(res.counterexample.size(), 1u);
  EXPECT_TRUE(res.counterexample[0] == "1" || res.counterexample[0] == "-1")
      << res.message;
  EXPECT_NE(res.message.find("CGP_CHECK_SEED="), std::string::npos);

  // The same expressions under the sound global registry are left alone.
  rewrite::simplifier good;
  good.add_default_concept_rules();
  const auto sound = check::for_all<std::int64_t>(
      "simplify.differential.sound_model",
      [&good](std::int64_t x) {
        const rewrite::expr e = rewrite::expr::binary_op(
            "-", rewrite::expr::int_lit(0), rewrite::expr::int_lit(x), "int");
        return values_agree(rewrite::evaluate(e, {}),
                            rewrite::evaluate(good.simplify(e), {}));
      });
  EXPECT_TRUE(sound.ok) << sound.message;
}

TEST(RewriteConformance, ConceptRuleInstancesMatchAxiomSemantics) {
  // The generic Monoid/Group rules on the GLOBAL registry, differentially
  // checked on expressions biased toward their redexes, with the bridge's
  // own typed generator rather than handwritten cases.
  rewrite::simplifier simp;
  simp.add_default_concept_rules();
  std::size_t fired = 0;
  check::config cfg;
  cfg.cases = 400;  // denser sampling for the headline soundness claim
  const auto res = differential(simp, "double", &fired, cfg);
  EXPECT_TRUE(res.ok) << res.message;
  EXPECT_GT(fired, 0u);
}
