// Tests for the unified telemetry layer: counter exactness under
// contention, histogram bucketing, span nesting, exporter round-trips,
// empirical performance-concept checking, and the end-to-end guarantee
// that all five instrumented subsystems report through one registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

#include "check/property.hpp"
#include "distributed/algorithms.hpp"
#include "distributed/network.hpp"
#include "graph/instrumented.hpp"
#include "parallel/thread_pool.hpp"
#include "rewrite/engine.hpp"
#include "rewrite/parser.hpp"
#include "sequences/instrumented.hpp"
#include "stllint/stllint.hpp"
#include "telemetry/complexity_check.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace cgp;

// ---------------------------------------------------------------------------
// counters / gauges
// ---------------------------------------------------------------------------

TEST(TelemetryCounter, ConcurrentIncrementsSumExactly) {
  telemetry::registry reg;
  telemetry::counter& c = reg.get_counter("test.counter.concurrent");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(TelemetryCounter, AddWithDeltaAndReset) {
  telemetry::counter c;
  c.add(41);
  c.add();
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(TelemetryCounter, RegistryReturnsStableReferences) {
  telemetry::registry reg;
  telemetry::counter& a = reg.get_counter("test.stable");
  a.add(7);
  // Force rebalancing-ish growth: many inserts after taking the reference.
  for (int i = 0; i < 100; ++i)
    (void)reg.get_counter("test.filler." + std::to_string(i));
  telemetry::counter& b = reg.get_counter("test.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7u);
}

TEST(TelemetryGauge, SetAddSub) {
  telemetry::gauge g;
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.value(), 12);
  g.sub(20);
  EXPECT_EQ(g.value(), -8);  // gauges may go negative
}

TEST(TelemetryRegistry, CounterSumByPrefix) {
  telemetry::registry reg;
  reg.get_counter("alpha.x").add(1);
  reg.get_counter("alpha.y").add(2);
  reg.get_counter("alphabet.z").add(4);  // shares a string prefix, counted
  reg.get_counter("beta.x").add(8);
  EXPECT_EQ(reg.counter_sum("alpha."), 3u);
  EXPECT_EQ(reg.counter_sum("alpha"), 7u);
  EXPECT_EQ(reg.counter_sum("gamma"), 0u);
}

// ---------------------------------------------------------------------------
// histograms
// ---------------------------------------------------------------------------

TEST(TelemetryHistogram, BucketBoundaries) {
  using H = telemetry::histogram;
  // bucket 0 is exactly {0}; bucket i >= 1 is [2^(i-1), 2^i - 1].
  EXPECT_EQ(H::bucket_of(0), 0u);
  EXPECT_EQ(H::bucket_of(1), 1u);
  EXPECT_EQ(H::bucket_of(2), 2u);
  EXPECT_EQ(H::bucket_of(3), 2u);
  EXPECT_EQ(H::bucket_of(4), 3u);
  EXPECT_EQ(H::bucket_of(1023), 10u);
  EXPECT_EQ(H::bucket_of(1024), 11u);
  EXPECT_EQ(H::bucket_bounds(0), (std::pair<std::uint64_t, std::uint64_t>{0, 0}));
  EXPECT_EQ(H::bucket_bounds(1), (std::pair<std::uint64_t, std::uint64_t>{1, 1}));
  EXPECT_EQ(H::bucket_bounds(3), (std::pair<std::uint64_t, std::uint64_t>{4, 7}));
  EXPECT_EQ(H::bucket_bounds(11),
            (std::pair<std::uint64_t, std::uint64_t>{1024, 2047}));
  // Every value lands inside its bucket's [lo, hi].
  for (const std::uint64_t v : {0ull, 1ull, 2ull, 7ull, 8ull, 100ull, 4096ull,
                                ~0ull}) {
    const auto [lo, hi] = H::bucket_bounds(H::bucket_of(v));
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

TEST(TelemetryHistogram, RecordAggregates) {
  telemetry::histogram h;
  for (const std::uint64_t v : {1ull, 2ull, 3ull, 100ull}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 26.5);
  EXPECT_EQ(h.bucket_count(1), 1u);  // {1}
  EXPECT_EQ(h.bucket_count(2), 2u);  // {2, 3}
  EXPECT_EQ(h.bucket_count(7), 1u);  // [64, 127] holds 100
}

TEST(TelemetryHistogram, PercentilesInterpolateFromBuckets) {
  telemetry::histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);  // empty

  // 100 identical values: every percentile lands in that bucket.
  for (int i = 0; i < 100; ++i) h.record(8);
  const auto [lo8, hi8] = telemetry::histogram::bucket_bounds(
      telemetry::histogram::bucket_of(8));
  for (const double p : {1.0, 50.0, 99.0}) {
    EXPECT_GE(h.percentile(p), static_cast<double>(lo8));
    EXPECT_LE(h.percentile(p), static_cast<double>(hi8));
  }

  // Skewed distribution: 95 small, 5 large.  p50 stays with the small
  // mass, p99 reaches the large bucket, and the sequence is monotone.
  telemetry::histogram skew;
  for (int i = 0; i < 95; ++i) skew.record(10);
  for (int i = 0; i < 5; ++i) skew.record(10'000);
  const double p50 = skew.percentile(50.0);
  const double p95 = skew.percentile(95.0);
  const double p99 = skew.percentile(99.0);
  EXPECT_LE(p50, 15.0);
  EXPECT_GE(p99, 8192.0);  // inside [8192, 16383], the bucket of 10000
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Out-of-range requests clamp instead of extrapolating.
  EXPECT_GE(skew.percentile(100.0), p99);
  EXPECT_LE(skew.percentile(0.0), p50);
}

// ---------------------------------------------------------------------------
// spans
// ---------------------------------------------------------------------------

TEST(TelemetrySpan, NestingDepthAndCharges) {
  telemetry::registry reg;
  EXPECT_EQ(telemetry::span::depth(), 0);
  {
    telemetry::span outer("test.outer", reg);
    outer.charge(5);
    EXPECT_EQ(telemetry::span::depth(), 1);
    EXPECT_EQ(telemetry::span::current(), &outer);
    {
      telemetry::span inner("test.inner", reg);
      inner.charge(2);
      EXPECT_EQ(telemetry::span::depth(), 2);
      EXPECT_EQ(telemetry::span::current(), &inner);
      // Charges are per-span, not inherited.
      EXPECT_EQ(inner.charged(), 2u);
      EXPECT_EQ(outer.charged(), 5u);
    }
    EXPECT_EQ(telemetry::span::depth(), 1);
    EXPECT_EQ(telemetry::span::current(), &outer);
  }
  EXPECT_EQ(telemetry::span::depth(), 0);
  EXPECT_EQ(telemetry::span::current(), nullptr);
  EXPECT_EQ(reg.get_counter("test.outer.calls").value(), 1u);
  EXPECT_EQ(reg.get_counter("test.inner.calls").value(), 1u);
  EXPECT_EQ(reg.get_counter("test.outer.ops").value(), 5u);
  EXPECT_EQ(reg.get_counter("test.inner.ops").value(), 2u);
  EXPECT_EQ(reg.get_histogram("test.outer.duration_us").count(), 1u);
}

TEST(TelemetrySpan, DepthIsPerThread) {
  telemetry::registry reg;
  telemetry::span outer("test.main_thread", reg);
  int other_thread_depth = -1;
  std::thread([&] { other_thread_depth = telemetry::span::depth(); }).join();
  EXPECT_EQ(other_thread_depth, 0);
  EXPECT_EQ(telemetry::span::depth(), 1);
}

// ---------------------------------------------------------------------------
// exporters
// ---------------------------------------------------------------------------

TEST(TelemetryExport, JsonRoundTripsThroughParse) {
  telemetry::registry reg;
  reg.get_counter("round.trip.counter").add(123);
  reg.get_gauge("round.trip.gauge").set(-7);
  telemetry::histogram& h = reg.get_histogram("round.trip.hist");
  h.record(3);
  h.record(300);
  reg.record_check({.name = "round.trip.check",
                    .bound = "O(n log n)",
                    .ok = true,
                    .growth_slope = 0.01,
                    .max_ratio = 2.5,
                    .tolerance = 0.35,
                    .samples = 6,
                    .detail = "quoted \"detail\" with\nnewline"});

  const std::string json = reg.export_json();
  const telemetry::json_value doc = telemetry::parse_json(json);

  EXPECT_EQ(doc.at("counters").at("round.trip.counter").num, 123.0);
  EXPECT_EQ(doc.at("gauges").at("round.trip.gauge").num, -7.0);
  const auto& hist = doc.at("histograms").at("round.trip.hist");
  EXPECT_EQ(hist.at("count").num, 2.0);
  EXPECT_EQ(hist.at("sum").num, 303.0);
  EXPECT_EQ(hist.at("max").num, 300.0);
  ASSERT_EQ(hist.at("buckets").arr.size(), 2u);  // sparse: only hit buckets
  EXPECT_EQ(hist.at("buckets").arr[0].at("count").num, 1.0);
  const auto& checks = doc.at("checks");
  ASSERT_EQ(checks.arr.size(), 1u);
  EXPECT_EQ(checks.arr[0].at("name").str, "round.trip.check");
  EXPECT_EQ(checks.arr[0].at("bound").str, "O(n log n)");
  EXPECT_TRUE(checks.arr[0].at("ok").b);
  EXPECT_EQ(checks.arr[0].at("detail").str, "quoted \"detail\" with\nnewline");
}

TEST(TelemetryExport, TextIsOneLinePerMetric) {
  telemetry::registry reg;
  reg.get_counter("a.b.c").add(9);
  reg.get_gauge("a.b.depth").set(4);
  reg.get_histogram("a.b.lat").record(10);
  const std::string text = reg.export_text();
  EXPECT_NE(text.find("counter a.b.c 9\n"), std::string::npos);
  EXPECT_NE(text.find("gauge a.b.depth 4\n"), std::string::npos);
  EXPECT_NE(text.find("histogram a.b.lat count=1"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(TelemetryExport, ExportsCarryHistogramPercentiles) {
  telemetry::registry reg;
  telemetry::histogram& h = reg.get_histogram("pctl.hist");
  for (int i = 0; i < 95; ++i) h.record(10);
  for (int i = 0; i < 5; ++i) h.record(10'000);

  // Text: still one line, now with the interpolated percentile summary.
  const std::string text = reg.export_text();
  for (const char* key : {" p50=", " p95=", " p99="})
    EXPECT_NE(text.find(key), std::string::npos) << key;
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);

  // JSON: the histogram object exposes the same three percentiles.
  const auto doc = telemetry::parse_json(reg.export_json());
  const auto& hist = doc.at("histograms").at("pctl.hist");
  // The JSON writer renders at stream precision; compare relatively.
  EXPECT_NEAR(hist.at("p50").num, h.percentile(50.0),
              h.percentile(50.0) * 1e-4);
  EXPECT_NEAR(hist.at("p95").num, h.percentile(95.0),
              h.percentile(95.0) * 1e-4);
  EXPECT_NEAR(hist.at("p99").num, h.percentile(99.0),
              h.percentile(99.0) * 1e-4);
  EXPECT_LE(hist.at("p50").num, hist.at("p99").num);
}

TEST(TelemetryExport, EmptyHistogramPercentilesAreExplicitNulls) {
  // Percentiles of zero samples do not exist; a 0 would read as "measured
  // and instantaneous".  Both exporters must say null, and flip to numbers
  // as soon as one sample lands.
  telemetry::registry reg;
  (void)reg.get_histogram("empty.hist");

  const std::string text = reg.export_text();
  EXPECT_NE(text.find("p50=null p95=null p99=null"), std::string::npos)
      << text;

  const auto doc = telemetry::parse_json(reg.export_json());
  const auto& hist = doc.at("histograms").at("empty.hist");
  EXPECT_EQ(hist.at("count").num, 0.0);
  for (const char* key : {"p50", "p95", "p99"})
    EXPECT_TRUE(hist.at(key).is(telemetry::json_value::kind::null)) << key;

  reg.get_histogram("empty.hist").record(7);
  const auto doc2 = telemetry::parse_json(reg.export_json());
  const auto& hist2 = doc2.at("histograms").at("empty.hist");
  for (const char* key : {"p50", "p95", "p99"})
    EXPECT_TRUE(hist2.at(key).is(telemetry::json_value::kind::number)) << key;
  EXPECT_EQ(reg.export_text().find("p50=null"), std::string::npos);
}

// ---------------------------------------------------------------------------
// counter snapshots
// ---------------------------------------------------------------------------

TEST(TelemetryCounterSnapshot, DeltaSeesOnlyGrowth) {
  telemetry::registry reg;
  reg.get_counter("snap.a").add(10);
  reg.get_counter("snap.b").add(5);

  telemetry::counter_snapshot snap(reg);
  EXPECT_TRUE(snap.delta().empty());

  reg.get_counter("snap.a").add(7);
  reg.get_counter("snap.c").add(3);  // created after the snapshot
  const auto d = snap.delta();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].first, "snap.a");
  EXPECT_EQ(d[0].second, 7u);
  EXPECT_EQ(d[1].first, "snap.c");
  EXPECT_EQ(d[1].second, 3u);
}

TEST(TelemetryCounterSnapshot, DeltaSumFiltersByPrefix) {
  telemetry::registry reg;
  telemetry::counter_snapshot snap(reg);
  reg.get_counter("pre.fix.one").add(4);
  reg.get_counter("pre.fix.two").add(6);
  reg.get_counter("other.three").add(100);
  EXPECT_EQ(snap.delta_sum("pre.fix."), 10u);
  EXPECT_EQ(snap.delta_sum("other."), 100u);
  EXPECT_EQ(snap.delta_sum("missing."), 0u);
  EXPECT_EQ(snap.delta_sum(""), 110u);
}

TEST(TelemetryExport, ParserRejectsMalformedJson) {
  EXPECT_THROW((void)telemetry::parse_json("{\"a\":}"), telemetry::json_error);
  EXPECT_THROW((void)telemetry::parse_json("[1, 2"), telemetry::json_error);
  EXPECT_THROW((void)telemetry::parse_json("{} trailing"),
               telemetry::json_error);
}

TEST(TelemetryExport, DumpJsonSerializesEveryKind) {
  const auto doc = telemetry::parse_json(
      "{\"s\":\"a\\\"b\\nc\",\"n\":-2.5,\"t\":true,\"f\":false,"
      "\"z\":null,\"a\":[1,[],{}]}");
  EXPECT_EQ(telemetry::dump_json(doc),
            "{\"a\":[1,[],{}],\"f\":false,\"n\":-2.5,\"s\":\"a\\\"b\\nc\","
            "\"t\":true,\"z\":null}");
  // Shortest round-tripping numbers: integral doubles stay integral.
  EXPECT_EQ(telemetry::dump_json(telemetry::parse_json("42")), "42");
  EXPECT_EQ(telemetry::dump_json(telemetry::parse_json("0.1")), "0.1");
}

TEST(TelemetryExport, JsonRoundTripIsAFixedPoint) {
  // export → bundled parser → re-export must converge: after one
  // parse∘dump pass the document is a fixed point of further passes.
  telemetry::registry reg;
  reg.get_counter("rt.counter").add(1234567);
  (void)reg.get_counter("rt.zero");  // untouched counter still exports
  reg.get_gauge("rt.gauge").set(-42);
  auto& h = reg.get_histogram("rt.hist");
  h.record(0);    // bucket 0 (the [0,0] bucket)
  h.record(1);
  h.record(300);
  h.record(~std::uint64_t{0});  // saturates bucket 64: hi = 2^64 - 1
  (void)reg.get_histogram("rt.empty");  // no samples: empty bucket array

  const std::string s1 = reg.export_json();
  const std::string s2 = telemetry::dump_json(telemetry::parse_json(s1));
  const std::string s3 = telemetry::dump_json(telemetry::parse_json(s2));
  // s1 and s2 may differ lexically — json_value stores numbers as doubles,
  // so the saturated bucket's hi = 2^64 - 1 is rounded — but the pass is
  // idempotent from then on.
  EXPECT_EQ(s2, s3);

  // The re-parsed document still carries the metric semantics.
  const auto doc = telemetry::parse_json(s2);
  EXPECT_EQ(doc.at("counters").at("rt.counter").num, 1234567.0);
  EXPECT_EQ(doc.at("counters").at("rt.zero").num, 0.0);
  EXPECT_EQ(doc.at("gauges").at("rt.gauge").num, -42.0);
  const auto& hist = doc.at("histograms").at("rt.hist");
  EXPECT_EQ(hist.at("count").num, 4.0);
  ASSERT_EQ(hist.at("buckets").arr.size(), 4u);  // 0, 1, 300, 2^64-1
  EXPECT_EQ(hist.at("buckets").arr[0].at("lo").num, 0.0);
  EXPECT_EQ(hist.at("buckets").arr[0].at("hi").num, 0.0);
  // The saturated bucket's bounds survive as the nearest double.
  EXPECT_EQ(hist.at("buckets").arr[3].at("hi").num,
            static_cast<double>(~std::uint64_t{0}));
  EXPECT_TRUE(doc.at("histograms").at("rt.empty").at("buckets").arr.empty());
  EXPECT_EQ(doc.at("histograms").at("rt.empty").at("mean").num, 0.0);
}

TEST(TelemetryExport, GlobalRegistryExportRoundTripsThroughDump) {
  // The live global registry (whatever this test binary accumulated so
  // far) must round-trip too — not just hand-built registries.
  const std::string s1 = telemetry::registry::global().export_json();
  const std::string s2 = telemetry::dump_json(telemetry::parse_json(s1));
  EXPECT_EQ(s2, telemetry::dump_json(telemetry::parse_json(s2)));
}

// ---------------------------------------------------------------------------
// complexity_check: empirical performance concepts
// ---------------------------------------------------------------------------

TEST(ComplexityCheck, AcceptsConformingAndRejectsQuadraticSynthetic) {
  std::vector<telemetry::sample> nlogn, quadratic;
  for (double n = 64; n <= 8192; n *= 2) {
    nlogn.push_back({n, 2.2 * n * std::log2(n)});
    quadratic.push_back({n, 0.25 * n * n});
  }
  const core::big_o bound = core::big_o::power("n", 1, 1);  // O(n log n)

  const auto good = telemetry::complexity_check("synthetic.nlogn", nlogn, bound);
  EXPECT_TRUE(good.ok) << good.detail;
  EXPECT_LT(std::abs(good.growth_slope), 0.15);

  const auto bad =
      telemetry::complexity_check("synthetic.quadratic", quadratic, bound);
  EXPECT_FALSE(bad.ok) << bad.detail;
  EXPECT_GT(bad.growth_slope, 0.5);
}

TEST(ComplexityCheck, RefusesMeaninglessSampleSets) {
  const core::big_o bound = core::big_o::n();
  EXPECT_FALSE(telemetry::complexity_check("too.few", {{10, 10}, {20, 20}},
                                           bound)
                   .ok);
  EXPECT_FALSE(telemetry::complexity_check(
                   "too.narrow", {{10, 10}, {20, 20}, {30, 30}}, bound)
                   .ok);
}

TEST(ComplexityCheck, UnfittableSweepsReportInconclusiveNotViolated) {
  const core::big_o bound = core::big_o::n();
  // Too few samples to fit a slope.
  const auto few =
      telemetry::complexity_check("too.few", {{10, 10}, {4000, 4000}}, bound);
  EXPECT_FALSE(few.ok);
  EXPECT_TRUE(few.inconclusive);
  EXPECT_NE(few.detail.find("inconclusive"), std::string::npos);
  EXPECT_NE(few.to_string().find("INCONCLUSIVE"), std::string::npos);
  // Enough samples but max(n) < 4·min(n).
  const auto narrow = telemetry::complexity_check(
      "too.narrow", {{10, 10}, {20, 20}, {30, 30}}, bound);
  EXPECT_FALSE(narrow.ok);
  EXPECT_TRUE(narrow.inconclusive);
  // A fittable sweep that fails is VIOLATED, not inconclusive.
  std::vector<telemetry::sample> quad;
  for (double n = 64; n <= 4096; n *= 2) quad.push_back({n, n * n});
  const auto violated =
      telemetry::complexity_check("synthetic.quadratic", quad, bound);
  EXPECT_FALSE(violated.ok);
  EXPECT_FALSE(violated.inconclusive);
  EXPECT_NE(violated.to_string().find("VIOLATED"), std::string::npos);
  // The JSON export distinguishes the two failure kinds.
  telemetry::registry reg;
  reg.record_check(few);
  reg.record_check(violated);
  const auto doc = telemetry::parse_json(reg.export_json());
  ASSERT_EQ(doc.at("checks").arr.size(), 2u);
  EXPECT_TRUE(doc.at("checks").arr[0].at("inconclusive").b);
  EXPECT_FALSE(doc.at("checks").arr[1].at("inconclusive").b);
}

TEST(ComplexityCheck, ConstantTimeSeriesPassesConstantAndLinearBounds) {
  std::vector<telemetry::sample> flat;
  for (double n = 64; n <= 8192; n *= 2) flat.push_back({n, 12.0});
  const auto vs_one =
      telemetry::complexity_check("flat.vs.one", flat, core::big_o::one());
  EXPECT_TRUE(vs_one.ok) << vs_one.detail;
  EXPECT_FALSE(vs_one.inconclusive);
  EXPECT_NEAR(vs_one.growth_slope, 0.0, 1e-9);
  // O(n) over-declares a constant series; the check accepts (it bounds
  // growth from above) rather than reporting a violation.
  const auto vs_n =
      telemetry::complexity_check("flat.vs.n", flat, core::big_o::n());
  EXPECT_TRUE(vs_n.ok) << vs_n.detail;
  EXPECT_LT(vs_n.growth_slope, 0.0);
}

TEST(ComplexityCheck, NoisyLinearSeriesNearBoundaryIsDeterministic) {
  // Multiplicative noise on a linear series, drawn from the session seed:
  // bounded ±10% noise cannot push the excess past the 0.35 tolerance, so
  // the verdict must be ok for every seed — and identical on replay.
  std::uint64_t state = cgp::check::default_seed();
  auto noise = [&state] {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return 0.9 + 0.2 * (static_cast<double>(z % 1000) / 1000.0);
  };
  std::vector<telemetry::sample> noisy;
  for (double n = 64; n <= 8192; n *= 2) noisy.push_back({n, 3.0 * n * noise()});
  const auto first =
      telemetry::complexity_check("noisy.linear", noisy, core::big_o::n());
  EXPECT_TRUE(first.ok) << first.detail;
  EXPECT_FALSE(first.inconclusive);
  const auto replay =
      telemetry::complexity_check("noisy.linear", noisy, core::big_o::n());
  EXPECT_DOUBLE_EQ(first.growth_slope, replay.growth_slope);
}

// A deliberately-quadratic "sort" (selection sort) whose comparisons are
// counted — the classic violation of a ComplexityO(n log n) performance
// concept.
template <class I, class Cmp = std::less<>>
std::uint64_t selection_sort_counting(I first, I last, Cmp cmp = {}) {
  std::uint64_t comparisons = 0;
  for (I i = first; i != last; ++i) {
    I best = i;
    for (I j = std::next(i); j != last; ++j) {
      ++comparisons;
      if (cmp(*j, *best)) best = j;
    }
    std::iter_swap(i, best);
  }
  return comparisons;
}

std::vector<int> random_ints(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(0, 1 << 30);
  std::vector<int> v(n);
  for (int& x : v) x = dist(rng);
  return v;
}

TEST(ComplexityCheck, LibrarySortMeetsItsPerformanceConceptQuadraticDoesNot) {
  const core::big_o nlogn = core::big_o::power("n", 1, 1);
  const std::vector<std::size_t> sizes = {256, 512, 1024, 2048, 4096, 8192};
  telemetry::registry reg;

  // The library's concept-dispatched sort stays within c * n log n ...
  const auto real = telemetry::check_scaling(
      "sequences.sort.comparisons", sizes, nlogn,
      [](std::size_t n) {
        auto v = random_ints(n, static_cast<std::uint32_t>(n));
        return sequences::instrumented::sort(v.begin(), v.end());
      },
      reg);
  EXPECT_TRUE(real.ok) << real.detail;

  // ... while the deliberately-quadratic sort is flagged as violating the
  // same declared bound.
  const auto quad = telemetry::check_scaling(
      "test.selection_sort.comparisons", sizes, nlogn,
      [](std::size_t n) {
        auto v = random_ints(n, static_cast<std::uint32_t>(n) + 1);
        return selection_sort_counting(v.begin(), v.end());
      },
      reg);
  EXPECT_FALSE(quad.ok) << quad.detail;
  EXPECT_GT(quad.growth_slope, 0.5);

  // Both verdicts are recorded and exported for bench/ consumers.
  const auto reports = reg.check_reports();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_TRUE(reports[0].ok);
  EXPECT_FALSE(reports[1].ok);
  const auto doc = telemetry::parse_json(reg.export_json());
  EXPECT_EQ(doc.at("checks").arr.size(), 2u);
}

TEST(ComplexityCheck, BinarySearchIsLogarithmic) {
  const core::big_o logn = core::big_o::log_n();
  const auto report = telemetry::check_scaling(
      "sequences.lower_bound.comparisons",
      {1024, 4096, 16384, 65536, 262144}, logn, [](std::size_t n) {
        std::vector<int> v(n);
        for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<int>(i);
        return sequences::instrumented::lower_bound_count(
            v.begin(), v.end(), static_cast<int>(n / 3));
      });
  EXPECT_TRUE(report.ok) << report.detail;
}

TEST(ComplexityCheck, GraphBfsIsLinearInEdges) {
  // Ring graphs: E = V, so BFS ops should scale linearly with V.
  const auto report = telemetry::check_scaling(
      "graph.bfs.operations", {128, 256, 512, 1024, 2048}, core::big_o::n(),
      [](std::size_t n) {
        graph::adjacency_list<double> g(n);
        for (std::size_t i = 0; i < n; ++i)
          g.add_edge(i, (i + 1) % n, 1.0);
        return graph::instrumented::bfs_distances(g, 0).second;
      });
  EXPECT_TRUE(report.ok) << report.detail;
}

// ---------------------------------------------------------------------------
// end-to-end: all five instrumented subsystems report into one registry
// ---------------------------------------------------------------------------

TEST(TelemetryIntegration, AllFiveSubsystemsExportNonZeroMetrics) {
  auto& reg = telemetry::registry::global();

  // (1) parallel: run work through a fresh pool.
  {
    parallel::thread_pool pool(4);
    std::atomic<int> hits{0};
    pool.run_chunks(16, [&hits](std::size_t) { ++hits; });
    ASSERT_EQ(hits.load(), 16);
  }

  // (2) distributed: a ring election.
  {
    distributed::sim_transport net({.nodes = 8});
    net.spawn(distributed::lcr_leader_election());
    const auto stats = net.run();
    ASSERT_GT(stats.messages_total, 0u);
    ASSERT_GT(stats.messages_for("uid"), 0u);
    // Per-tag counts partition the total.
    std::size_t by_tag = 0;
    for (const std::string& tag : stats.tags())
      by_tag += stats.messages_for(tag);
    ASSERT_EQ(by_tag, stats.messages_total);
  }

  // (3) rewrite: simplify an expression that fires concept rules.
  {
    rewrite::simplifier simp;  // uses the pre-populated global registry
    simp.add_default_concept_rules();
    const rewrite::expr e =
        rewrite::parse_expr("(x + 0) * 1", {{"x", "int"}});
    (void)simp.simplify(e);
  }

  // (4) stllint: lint a snippet with a diagnostic.
  {
    const auto result = stllint::lint_source(R"(
void f() {
  vector<int>::iterator it;
  use(*it);
}
)");
    ASSERT_FALSE(result.diags.empty());
  }

  // (5) sequences + graph: instrumented algorithm runs.
  {
    auto v = random_ints(512, 7);
    (void)sequences::instrumented::sort(v.begin(), v.end());
    graph::adjacency_list<double> g(16);
    for (std::size_t i = 0; i + 1 < 16; ++i) g.add_edge(i, i + 1, 1.0);
    (void)graph::instrumented::bfs_distances(g, 0);
  }

  // Every subsystem must have non-zero counters under its prefix, and the
  // JSON export must parse and contain them.
  for (const char* prefix :
       {"parallel.", "distributed.", "rewrite.", "stllint.", "sequences.",
        "graph."}) {
    EXPECT_GT(reg.counter_sum(prefix), 0u)
        << "no metrics reported under prefix " << prefix;
  }
  const auto doc = telemetry::parse_json(reg.export_json());
  EXPECT_GT(doc.at("counters")
                .at("parallel.thread_pool.tasks_completed")
                .num,
            0.0);
  EXPECT_GT(doc.at("counters").at("distributed.network.messages.uid").num,
            0.0);
  EXPECT_GT(doc.at("counters").at("stllint.analyzer.diagnostics.warning").num,
            0.0);
  EXPECT_GT(doc.at("counters").at("sequences.sort.comparisons").num, 0.0);
  EXPECT_GT(doc.at("counters").at("graph.bfs.operations").num, 0.0);
  // Queue depth returned to zero once the pool drained.
  EXPECT_EQ(doc.at("gauges").at("parallel.thread_pool.queue_depth").num, 0.0);
  // Per-task latency histogram saw every chunk.
  EXPECT_GE(doc.at("histograms").at("parallel.thread_pool.task_us").at("count").num,
            16.0);
}

TEST(TelemetryIntegration, PerTagMessageCountsMatchRegistry) {
  auto& reg = telemetry::registry::global();
  const std::uint64_t before =
      reg.get_counter("distributed.network.messages.probe").value();
  distributed::sim_transport net(
      {.nodes = 4, .topo = distributed::topology::complete});
  net.spawn([](int) {
    struct probe final : distributed::process {
      void start(distributed::context& ctx) override {
        for (const int nb : ctx.neighbors()) ctx.send(nb, "probe", {1});
      }
      void receive(distributed::context&, const distributed::message&)
          override {}
    };
    return std::make_unique<probe>();
  });
  const auto stats = net.run();
  EXPECT_EQ(stats.messages_for("probe"), 12u);  // 4 nodes x 3 neighbors
  EXPECT_EQ(stats.tags(), std::vector<std::string>{"probe"});
  EXPECT_EQ(reg.get_counter("distributed.network.messages.probe").value(),
            before + 12);
}

}  // namespace
