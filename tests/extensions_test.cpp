// Tests for the extension features: extra group/ring theorems, the
// registry-axiom -> proposition bridge, constant folding and
// derived-theorem rewrite rules, new sequence algorithms, Bellman-Ford and
// Prim, the distributed convergecast aggregation, and STLlint's
// unchecked-search-result diagnosis.
#include <gtest/gtest.h>

#include <forward_list>
#include <random>

#include "distributed/algorithms.hpp"
#include "graph/algorithms.hpp"
#include "proof/theories.hpp"
#include "rewrite/engine.hpp"
#include "rewrite/eval.hpp"
#include "sequences/sort.hpp"
#include "stllint/stllint.hpp"

// ---------------------------------------------------------------------------
// proof: extra theorems and the axiom bridge
// ---------------------------------------------------------------------------

namespace cgp::proof {
namespace {

TEST(GroupTheoryExt, InverseOfIdentity) {
  const prop thm = theories::group_inverse_of_identity().check();
  EXPECT_EQ(thm.to_string(), "inv(e) = e");
}

TEST(GroupTheoryExt, DoubleInverse) {
  std::size_t steps = 0;
  const prop thm = theories::group_double_inverse().check({}, &steps);
  EXPECT_EQ(thm.to_string(), "forall a. inv(inv(a)) = a");
  EXPECT_GT(steps, 15u);
}

TEST(GroupTheoryExt, DoubleInverseInstantiatesForIntegers) {
  const prop thm = theories::group_double_inverse().check(
      signature{{{"op", "+"}, {"e", "0"}, {"inv", "-"}}});
  EXPECT_EQ(thm.to_string(), "forall a. -(-(a)) = a");
}

TEST(TotalOrder, EquivalenceCollapsesToEquality) {
  std::size_t steps = 0;
  const prop thm =
      theories::total_order_equivalence_is_equality().check({}, &steps);
  EXPECT_EQ(thm.to_string(),
            "forall x. forall y. (E(x, y) ==> x = y)");
  EXPECT_GT(steps, 10u);
}

TEST(TotalOrder, InstantiatesForIntLess) {
  const prop thm = theories::total_order_equivalence_is_equality().check(
      signature{{{"lt", "<"}, {"E", "equiv"}}});
  EXPECT_EQ(thm.to_string(),
            "forall x. forall y. (equiv(x, y) ==> x = y)");
}

TEST(TotalOrder, TamperedCaseAnalysisRejected) {
  // Dropping trichotomy makes the case analysis improper.
  theorem thm = theories::total_order_equivalence_is_equality();
  thm.axioms = theories::strict_weak_order_axioms;  // no trichotomy
  EXPECT_THROW((void)thm.check(), proof_error);
}

TEST(AxiomBridge, LiftsEquationalAxiomToProposition) {
  const auto& reg = core::concept_registry::global();
  const auto axioms = theories::axioms_of_concept(reg, "Monoid");
  // Monoid: associativity + two identity axioms.
  ASSERT_EQ(axioms.size(), 3u);
  bool found_right_identity = false;
  for (const prop& p : axioms)
    if (p.to_string() == "forall x. op(x, e) = x") found_right_identity = true;
  EXPECT_TRUE(found_right_identity);
}

TEST(AxiomBridge, BridgedAxiomsAreUsablePremises) {
  // Use the registry's own Monoid axioms to derive op(op(a,e),e) = a —
  // the same objects that drive the rewrite engine, now in a proof.
  const auto& reg = core::concept_registry::global();
  proof_context ctx;
  prop right_identity = prop::falsum();
  for (const prop& p : theories::axioms_of_concept(reg, "Monoid")) {
    ctx.assert_axiom(p);
    if (p.to_string() == "forall x. op(x, e) = x") right_identity = p;
  }
  const term a = term::cst("a");
  const term e = term::cst("e");
  const term ae = term::app("op", {a, e});
  const prop step1 = ctx.uspec(right_identity, ae);  // op(op(a,e),e) = op(a,e)
  const prop step2 = ctx.uspec(right_identity, a);   // op(a,e) = a
  const prop out = ctx.eq_transitive(step1, step2);
  EXPECT_EQ(out.to_string(), "op(op(a, e), e) = a");
}

TEST(AxiomBridge, SignatureRenamesBridgedAxioms) {
  const auto& reg = core::concept_registry::global();
  const auto axioms = theories::axioms_of_concept(
      reg, "Monoid", signature{{{"op", "+"}, {"e", "0"}}});
  bool found = false;
  for (const prop& p : axioms)
    if (p.to_string() == "forall x. (x + 0) = x") found = true;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace cgp::proof

// ---------------------------------------------------------------------------
// rewrite: constant folding and derived-theorem rules
// ---------------------------------------------------------------------------

namespace cgp::rewrite {
namespace {

using E = expr;

TEST(ConstantFolding, FoldsLiteralSubtrees) {
  simplifier s;
  s.enable_constant_folding();
  const expr e = E::binary_op(
      "+", E::binary_op("*", E::int_lit(6), E::int_lit(7)), E::int_lit(0));
  // 6*7 folds to 42; 42 + 0 folds to 42 (by evaluation, even with no
  // Monoid rule installed).
  EXPECT_EQ(s.simplify(e), E::int_lit(42));
}

TEST(ConstantFolding, LeavesDivisionByZeroAlone) {
  simplifier s;
  s.enable_constant_folding();
  const expr e = E::binary_op("/", E::int_lit(1), E::int_lit(0));
  EXPECT_EQ(s.simplify(e), e);  // folding must not change error behavior
}

TEST(ConstantFolding, ComposesWithConceptRules) {
  simplifier s;
  s.add_default_concept_rules();
  s.enable_constant_folding();
  const expr i = E::var("i", "int");
  // (2 * 3) * 1 + (i + (-i))  ->  6
  const expr e = E::binary_op(
      "+",
      E::binary_op("*", E::binary_op("*", E::int_lit(2), E::int_lit(3)),
                   E::int_lit(1)),
      E::binary_op("+", i, E::unary_op("-", i)));
  EXPECT_EQ(s.simplify(e), E::int_lit(6));
}

TEST(DerivedTheoremRules, AnnihilationAndDoubleNegation) {
  simplifier s;
  for (auto& r : derived_theorem_rules()) s.add_expr_rule(r);
  const expr i = E::var("i", "int");
  EXPECT_EQ(s.simplify(E::binary_op("*", i, E::int_lit(0))), E::int_lit(0));
  EXPECT_EQ(s.simplify(E::binary_op("*", E::int_lit(0), i)), E::int_lit(0));
  EXPECT_EQ(s.simplify(E::unary_op("-", E::unary_op("-", i))), i);
  const expr f = E::var("f", "double");
  EXPECT_EQ(s.simplify(E::binary_op("*", f, E::double_lit(0.0))),
            E::double_lit(0.0));
}

TEST(DerivedTheoremRules, EachRuleIsLicensedByACheckedTheorem) {
  // The licences: annihilation and double inverse both certify.
  EXPECT_NO_THROW((void)cgp::proof::theories::ring_annihilation().check());
  EXPECT_NO_THROW((void)cgp::proof::theories::group_double_inverse().check());
}

TEST(InstantiationCache, RepeatedSimplifyIsConsistent) {
  simplifier s;
  s.add_default_concept_rules();
  const expr e = E::binary_op("+", E::var("i", "int"), E::int_lit(0));
  const expr once = s.simplify(e);
  const expr twice = s.simplify(e);  // second run hits the cache
  EXPECT_EQ(once, twice);
  EXPECT_EQ(once, E::var("i", "int"));
}

class FoldingSoundness : public ::testing::TestWithParam<unsigned> {};

TEST_P(FoldingSoundness, FoldedExpressionsEvaluateIdentically) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::int64_t> lit(-9, 9);
  std::uniform_int_distribution<int> coin(0, 1);
  simplifier s;
  s.add_default_concept_rules();
  s.enable_constant_folding();
  std::function<expr(int)> gen = [&](int depth) -> expr {
    if (depth == 0)
      return coin(rng) ? E::int_lit(lit(rng)) : E::var("i", "int");
    if (coin(rng) == 0) return E::unary_op("-", gen(depth - 1));
    return E::binary_op(coin(rng) ? "+" : "*", gen(depth - 1), gen(depth - 1));
  };
  for (int trial = 0; trial < 60; ++trial) {
    const expr e = gen(4);
    const expr folded = s.simplify(e);
    const environment env{{"i", lit(rng)}};
    EXPECT_TRUE(value_equal(evaluate(e, env), evaluate(folded, env)))
        << e.to_string() << " vs " << folded.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldingSoundness,
                         ::testing::Values(5u, 6u, 7u, 8u));

}  // namespace
}  // namespace cgp::rewrite

// ---------------------------------------------------------------------------
// sequences: partition / nth_element / unique / stable_sort
// ---------------------------------------------------------------------------

namespace cgp::sequences {
namespace {

TEST(Partition, PartitionsForwardRanges) {
  std::forward_list<int> f{5, 2, 8, 1, 9, 4};
  const auto is_even = [](int x) { return x % 2 == 0; };
  const auto point = cgp::sequences::partition(f.begin(), f.end(), is_even);
  EXPECT_TRUE(cgp::sequences::is_partitioned(f.begin(), f.end(), is_even));
  EXPECT_EQ(cgp::sequences::distance(f.begin(), point), 3);  // 2, 8, 4
}

TEST(Partition, EdgeCases) {
  std::vector<int> all_true{2, 4, 6};
  const auto is_even = [](int x) { return x % 2 == 0; };
  EXPECT_EQ(cgp::sequences::partition(all_true.begin(), all_true.end(),
                                      is_even),
            all_true.end());
  std::vector<int> all_false{1, 3};
  EXPECT_EQ(cgp::sequences::partition(all_false.begin(), all_false.end(),
                                      is_even),
            all_false.begin());
  std::vector<int> empty;
  EXPECT_EQ(cgp::sequences::partition(empty.begin(), empty.end(), is_even),
            empty.end());
}

class NthElementProperty : public ::testing::TestWithParam<int> {};

TEST_P(NthElementProperty, AgreesWithFullSort) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> d(-100, 100);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> v(200);
    for (int& x : v) x = d(rng);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t k = static_cast<std::size_t>(trial * 9 % v.size());
    cgp::sequences::nth_element(v.begin(), v.begin() + k, v.end());
    EXPECT_EQ(v[k], sorted[k]);
    for (std::size_t i = 0; i < k; ++i) EXPECT_LE(v[i], v[k]);
    for (std::size_t i = k; i < v.size(); ++i) EXPECT_GE(v[i], v[k]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NthElementProperty,
                         ::testing::Values(1, 2, 3, 4));

TEST(Unique, RemovesConsecutiveDuplicates) {
  std::vector<int> v{1, 1, 2, 3, 3, 3, 4, 1};
  const auto end = cgp::sequences::unique(v.begin(), v.end());
  v.erase(end, v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 1}));
}

TEST(Unique, GlobalDedupAfterSort) {
  std::vector<int> v{4, 1, 4, 2, 1, 2, 2};
  cgp::sequences::sort(v.begin(), v.end());
  const auto end = cgp::sequences::unique(v.begin(), v.end());
  v.erase(end, v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 4}));
}

TEST(AdjacentFind, FindsFirstPair) {
  const std::vector<int> v{1, 2, 2, 3, 3};
  EXPECT_EQ(cgp::sequences::adjacent_find(v.begin(), v.end()) - v.begin(), 1);
  const std::vector<int> none{1, 2, 3};
  EXPECT_EQ(cgp::sequences::adjacent_find(none.begin(), none.end()),
            none.end());
}

TEST(StableSort, PreservesRelativeOrderOfTies) {
  struct item {
    int key;
    int order;
  };
  std::vector<item> v;
  std::mt19937 rng(77);
  std::uniform_int_distribution<int> d(0, 5);
  for (int i = 0; i < 500; ++i) v.push_back({d(rng), i});
  cgp::sequences::stable_sort(
      v.begin(), v.end(),
      [](const item& a, const item& b) { return a.key < b.key; });
  for (std::size_t i = 1; i < v.size(); ++i) {
    EXPECT_LE(v[i - 1].key, v[i].key);
    if (v[i - 1].key == v[i].key) EXPECT_LT(v[i - 1].order, v[i].order);
  }
}

}  // namespace
}  // namespace cgp::sequences

// ---------------------------------------------------------------------------
// graph: Bellman-Ford and Prim
// ---------------------------------------------------------------------------

namespace cgp::graph {
namespace {

TEST(BellmanFord, HandlesNegativeEdges) {
  adjacency_list<double> g(4);
  g.add_edge(0, 1, 4.0);
  g.add_edge(0, 2, 5.0);
  g.add_edge(1, 3, 3.0);
  g.add_edge(2, 1, -3.0);  // negative but no negative cycle
  const auto dist = bellman_ford_shortest_paths(
      g, 0, [](const edge<double>& e) { return e.property; });
  ASSERT_TRUE(dist.has_value());
  EXPECT_DOUBLE_EQ((*dist)[1], 2.0);  // 0-2-1
  EXPECT_DOUBLE_EQ((*dist)[3], 5.0);  // 0-2-1-3
}

TEST(BellmanFord, DetectsNegativeCycle) {
  adjacency_list<double> g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, -2.0);
  g.add_edge(2, 1, 1.0);  // cycle 1-2-1 has weight -1
  EXPECT_FALSE(bellman_ford_shortest_paths(
                   g, 0, [](const edge<double>& e) { return e.property; })
                   .has_value());
}

TEST(BellmanFord, AgreesWithDijkstraOnNonNegativeWeights) {
  std::mt19937 rng(12);
  std::uniform_real_distribution<double> w(0.1, 10.0);
  std::uniform_int_distribution<std::size_t> pick(0, 19);
  adjacency_list<double> g(20);
  for (int e = 0; e < 60; ++e) g.add_edge(pick(rng), pick(rng), w(rng));
  const auto weight = [](const edge<double>& e) { return e.property; };
  const auto bf = bellman_ford_shortest_paths(g, 0, weight);
  const auto [dj, pred] = dijkstra_shortest_paths(g, 0, weight);
  (void)pred;
  ASSERT_TRUE(bf.has_value());
  for (std::size_t v = 0; v < 20; ++v) EXPECT_DOUBLE_EQ((*bf)[v], dj[v]) << v;
}

TEST(Prim, AgreesWithKruskalOnTotalWeight) {
  std::mt19937 rng(9);
  std::uniform_real_distribution<double> w(0.1, 10.0);
  for (int trial = 0; trial < 10; ++trial) {
    adjacency_list<double> g(12, directedness::undirected);
    // Connected: a random spanning path + extras.
    for (std::size_t v = 1; v < 12; ++v) g.add_edge(v - 1, v, w(rng));
    std::uniform_int_distribution<std::size_t> pick(0, 11);
    for (int e = 0; e < 10; ++e) {
      const auto a = pick(rng), b = pick(rng);
      if (a != b) g.add_edge(a, b, w(rng));
    }
    const auto mst_p = prim_mst(g);
    const auto mst_k = kruskal_mst(g);
    double wp = 0, wk = 0;
    for (const auto& e : mst_p) wp += e.property;
    for (const auto& e : mst_k) wk += e.property;
    EXPECT_EQ(mst_p.size(), 11u);
    EXPECT_NEAR(wp, wk, 1e-9);
  }
}

}  // namespace
}  // namespace cgp::graph

// ---------------------------------------------------------------------------
// distributed: convergecast aggregation
// ---------------------------------------------------------------------------

namespace cgp::distributed {
namespace {

TEST(Aggregate, SumsAllUidsOnEveryTopology) {
  for (topology topo : {topology::ring, topology::line, topology::star,
                        topology::grid, topology::complete,
                        topology::random_connected}) {
    sim_transport net({.nodes = 20, .topo = topo, .seed = 5});
    net.spawn(aggregate_sum(0));
    const auto stats = net.run();
    ASSERT_TRUE(net.decision(0, "aggregate").has_value()) << to_string(topo);
    EXPECT_EQ(*net.decision(0, "aggregate"), 20 * 21 / 2) << to_string(topo);
    EXPECT_EQ(stats.messages_total, 2 * net.edge_count()) << to_string(topo);
  }
}

TEST(Aggregate, WorksAsynchronously) {
  sim_transport net({.nodes = 15,
                     .topo = topology::random_connected,
                     .mode = timing::asynchronous,
                     .seed = 8});
  net.spawn(aggregate_sum(0));
  (void)net.run();
  ASSERT_TRUE(net.decision(0, "aggregate").has_value());
  EXPECT_EQ(*net.decision(0, "aggregate"), 15 * 16 / 2);
}

TEST(Aggregate, SingleNode) {
  sim_transport net({.nodes = 1});
  net.spawn(aggregate_sum(0));
  (void)net.run();
  EXPECT_EQ(*net.decision(0, "aggregate"), 1);
}

}  // namespace
}  // namespace cgp::distributed

// ---------------------------------------------------------------------------
// stllint: unchecked search results
// ---------------------------------------------------------------------------

namespace cgp::stllint {
namespace {

bool has_warning(const lint_result& r, std::string_view needle) {
  for (const diagnostic& d : r.diags)
    if (d.sev == severity::warning &&
        d.message.find(needle) != std::string::npos)
      return true;
  return false;
}

TEST(UncheckedSearch, DerefWithoutEndCheckWarns) {
  const auto r = lint_source(R"(
void f(vector<int>& v) {
  vector<int>::iterator it = find(v.begin(), v.end(), 42);
  use(*it);
}
)");
  EXPECT_TRUE(has_warning(r, "dereferencing the result of 'find'"))
      << r.to_string();
}

TEST(UncheckedSearch, EndComparisonVerifiesTheResult) {
  const auto r = lint_source(R"(
void f(vector<int>& v) {
  vector<int>::iterator it = find(v.begin(), v.end(), 42);
  if (it != v.end()) {
    use(*it);
  }
}
)");
  EXPECT_FALSE(has_warning(r, "dereferencing the result")) << r.to_string();
}

TEST(UncheckedSearch, DirectDerefOfCallResultWarns) {
  const auto r = lint_source(R"(
void f(vector<int>& v) {
  sort(v.begin(), v.end());
  use(*lower_bound(v.begin(), v.end(), 3));
}
)");
  EXPECT_TRUE(has_warning(r, "dereferencing the result of 'lower_bound'"))
      << r.to_string();
}

TEST(UncheckedSearch, ReportedOnceThanksToHealing) {
  const auto r = lint_source(R"(
void f(vector<int>& v) {
  vector<int>::iterator it = find(v.begin(), v.end(), 42);
  use(*it);
  use(*it);
}
)");
  int count = 0;
  for (const auto& d : r.diags)
    if (d.message.find("dereferencing the result") != std::string::npos)
      ++count;
  EXPECT_EQ(count, 1) << r.to_string();
}

TEST(UncheckedSearch, UnusedResultIsFine) {
  const auto r = lint_source(R"(
void f(vector<int>& v) {
  vector<int>::iterator it = find(v.begin(), v.end(), 42);
}
)");
  EXPECT_TRUE(r.clean()) << r.to_string();
}

}  // namespace
}  // namespace cgp::stllint
