// Conformance suite: the algebraic axioms behind the library's concept
// declarations, checked as executable properties (`ctest -L conformance`).
//
// Three layers, matching DESIGN.md §8:
//  1. laws.hpp bundles over the COMPILE-TIME models (trait declarations);
//  2. the registry bridge over every RUNTIME model declaration;
//  3. the falsifiable-axiom regression: a deliberately wrong Monoid
//     declaration must be caught, shrunk to a tiny counterexample, and
//     reproduced from the reported CGP_CHECK_SEED.
#include <complex>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/axiom_bridge.hpp"
#include "check/gtest_support.hpp"
#include "check/laws.hpp"
#include "core/algebraic.hpp"
#include "core/registry.hpp"

namespace check = cgp::check;
namespace core = cgp::core;

CGP_REGISTER_SEED_BANNER();

// ---------------------------------------------------------------------------
// The planted wrong model: (int64, -) declared a Monoid with identity 0.
// Subtraction is NOT associative and 0 is only a RIGHT identity, so the
// conformance checker must falsify the declaration.  This is the regression
// guard for the whole subsystem: if this test ever passes vacuously, the
// checker has stopped checking.
// ---------------------------------------------------------------------------
struct bad_minus {
  std::int64_t operator()(std::int64_t a, std::int64_t b) const {
    return a - b;
  }
};

namespace cgp::core {
template <>
struct declares_associative<std::int64_t, bad_minus> : std::true_type {};
template <>
struct monoid_traits<std::int64_t, bad_minus> {
  static std::int64_t identity() { return 0; }
};
}  // namespace cgp::core

namespace {

void expect_all_ok(const std::vector<check::result>& rs) {
  EXPECT_TRUE(check::all_ok(rs)) << check::failure_messages(rs);
  EXPECT_GT(check::total_cases(rs), 0u);
}

std::int64_t parsed(const std::string& s) { return std::strtoll(s.c_str(), nullptr, 10); }

}  // namespace

// --- layer 1: compile-time models ------------------------------------------

TEST(AlgebraConformance, IntAdditionIsAnAbelianGroup) {
  expect_all_ok(check::abelian_group_properties<std::int64_t, std::plus<>>(
      "int64,+"));
}

TEST(AlgebraConformance, UnsignedMultiplicationIsACommutativeMonoid) {
  expect_all_ok(
      check::commutative_monoid_properties<std::uint64_t, std::multiplies<>>(
          "uint64,*"));
}

TEST(AlgebraConformance, StringConcatenationIsAMonoid) {
  expect_all_ok(
      check::monoid_properties<std::string, std::plus<>>("string,+"));
}

TEST(AlgebraConformance, BoolConjunctionAndDisjunctionAreMonoids) {
  expect_all_ok(check::commutative_monoid_properties<bool, std::logical_and<>>(
      "bool,&&"));
  expect_all_ok(check::commutative_monoid_properties<bool, std::logical_or<>>(
      "bool,||"));
}

TEST(AlgebraConformance, BitwiseAndOrAreMonoidsXorIsAGroup) {
  expect_all_ok(
      check::commutative_monoid_properties<std::uint64_t, std::bit_and<>>(
          "uint64,&"));
  expect_all_ok(
      check::commutative_monoid_properties<std::uint64_t, std::bit_or<>>(
          "uint64,|"));
  expect_all_ok(check::abelian_group_properties<std::uint64_t, std::bit_xor<>>(
      "uint64,^"));
}

TEST(AlgebraConformance, DoubleAdditionIsExactOnDyadicSamples) {
  // Generated doubles are dyadic n/4, so + is exact and == is the right
  // equality even in IEEE arithmetic.
  expect_all_ok(
      check::abelian_group_properties<double, std::plus<>>("double,+"));
}

TEST(AlgebraConformance, DoubleMultiplicationGroupNeedsApproxEquality) {
  // Fig. 5's `f * (1.0/f) -> 1.0`: the reciprocal witness is one ulp off,
  // so the inverse laws use the approximate-equality knob; reciprocal(0)
  // leaves the domain and is discarded.
  expect_all_ok(check::group_properties<double, std::multiplies<>>(
      "double,*", {}, check::approx_eq()));
}

TEST(AlgebraConformance, ComplexAdditionIsAnAbelianGroup) {
  expect_all_ok(
      check::abelian_group_properties<std::complex<double>, std::plus<>>(
          "complex<double>,+"));
}

TEST(AlgebraConformance, RingDistributivityHolds) {
  expect_all_ok(check::ring_distributivity_properties<std::int64_t>("int64"));
  expect_all_ok(check::ring_distributivity_properties<double>("double"));
}

TEST(AlgebraConformance, MinMaxAreSemigroups) {
  expect_all_ok(
      check::semigroup_properties<std::int64_t, core::min_op>("int64,min"));
  expect_all_ok(
      check::semigroup_properties<std::int64_t, core::max_op>("int64,max"));
  expect_all_ok(
      check::monoid_properties<std::uint64_t, core::max_op>("uint64,max"));
}

// --- layer 3: the falsifiable-axiom regression ------------------------------

TEST(AlgebraConformance, PlantedWrongMonoidIsCaughtAndShrunk) {
  const auto rs = check::monoid_properties<std::int64_t, bad_minus>(
      "int64,- (planted)");
  EXPECT_FALSE(check::all_ok(rs));

  bool saw_falsified = false;
  for (const auto& r : rs) {
    if (!r.falsified) continue;
    saw_falsified = true;
    // Minimal counterexample: at most 3 components, every one in {-1,0,1}.
    ASSERT_LE(r.counterexample.size(), 3u) << r.message;
    for (const auto& c : r.counterexample)
      EXPECT_LE(std::llabs(parsed(c)), 1) << r.message;
    EXPECT_NE(r.message.find("CGP_CHECK_SEED="), std::string::npos);
  }
  EXPECT_TRUE(saw_falsified);

  // 0 IS a right identity of subtraction — that law must still pass, which
  // shows the checker falsifies axioms individually, not wholesale.
  for (const auto& r : rs) {
    if (r.name.find("right_identity") != std::string::npos) {
      EXPECT_TRUE(r.ok) << r.message;
    }
  }
}

TEST(AlgebraConformance, PlantedFailureReproducesFromReportedSeed) {
  const auto first = check::monoid_properties<std::int64_t, bad_minus>(
      "int64,- (planted)");
  const check::result* fail = nullptr;
  for (const auto& r : first)
    if (r.falsified && r.name.find("associativity") != std::string::npos)
      fail = &r;
  ASSERT_NE(fail, nullptr);

  check::config replay;
  replay.seed = fail->seed;  // exactly what the CGP_CHECK_SEED line prints
  const auto again = check::monoid_properties<std::int64_t, bad_minus>(
      "int64,- (planted)", replay);
  for (const auto& r : again) {
    if (r.name == fail->name) {
      EXPECT_EQ(r.failing_case, fail->failing_case);
      EXPECT_EQ(r.counterexample, fail->counterexample);
    }
  }
}

// --- layer 2: the runtime registry bridge -----------------------------------

TEST(AxiomBridge, EveryBuiltinRegistryModelSatisfiesItsAxioms) {
  const auto rs =
      check::registry_axiom_properties(core::concept_registry::global());
  // The builtin model database spans Monoid/Group/Ring models over int,
  // unsigned, double, bool, and string — the sweep must produce a real
  // suite, not a handful of skipped axioms.
  EXPECT_GE(rs.size(), 10u);
  expect_all_ok(rs);
}

TEST(AxiomBridge, WrongRegistryModelIsCaught) {
  core::concept_registry reg;
  core::register_builtin_concepts(reg);
  core::model_declaration bad;
  bad.concept_name = "Monoid";
  bad.arguments = {"int", "-"};
  bad.symbol_binding = {{"op", "-"}, {"e", "0"}};
  reg.declare_model(bad);

  const auto rs = check::model_axiom_properties(reg, bad);
  ASSERT_FALSE(rs.empty());
  bool left_identity_falsified = false;
  for (const auto& r : rs) {
    if (r.name.find("left_identity") != std::string::npos) {
      EXPECT_TRUE(r.falsified) << r.name;
      left_identity_falsified |= r.falsified;
      EXPECT_NE(r.message.find("CGP_CHECK_SEED="), std::string::npos);
    }
    if (r.name.find("right_identity") != std::string::npos) {
      EXPECT_TRUE(r.ok) << r.message;  // x - 0 == x does hold
    }
  }
  EXPECT_TRUE(left_identity_falsified);
}

TEST(AxiomBridge, SkipsCarriersItCannotGenerate) {
  EXPECT_TRUE(check::bridge_supports_type("int"));
  EXPECT_TRUE(check::bridge_supports_type("string"));
  EXPECT_FALSE(check::bridge_supports_type("matrix"));

  core::model_declaration m;
  m.concept_name = "Monoid";
  m.arguments = {"matrix", "matmul"};
  m.symbol_binding = {{"op", "matmul"}, {"e", "I"}};
  const auto rs =
      check::model_axiom_properties(core::concept_registry::global(), m);
  EXPECT_TRUE(rs.empty());
}
