// Conformance suite for the Executor concept: the SAME semantic property
// bundle (check/executor_laws.hpp — exactly-once under concurrent writers,
// nested fork-join termination, destruction drains) runs against every
// shipped model: the legacy shared-queue thread_pool, the
// work_stealing_pool, and the run-inline archetype.  This is the
// transport-parity pattern applied to schedulers: one contract, N models,
// randomized configurations, CGP_CHECK_SEED reproduction on failure.
//
// NOTE: multi-label suite (conformance;parallel) — TEST/TEST_F only, no
// TEST_P (see tests/CMakeLists.txt on gtest_add_tests discovery).
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "check/executor_laws.hpp"
#include "check/gtest_support.hpp"
#include "check/property.hpp"
#include "parallel/executor.hpp"
#include "parallel/options.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing_pool.hpp"

namespace check = cgp::check;
namespace par = cgp::parallel;

CGP_REGISTER_SEED_BANNER();

namespace {

void expect_all_ok(const std::vector<check::result>& rs) {
  ASSERT_FALSE(rs.empty());
  for (const auto& r : rs) {
    EXPECT_TRUE(r.ok) << r.name << "\n" << r.message;
    EXPECT_GT(r.cases_run, 0u) << r.name << " executed no cases";
  }
}

// Concurrency properties spin up a pool + producer threads per sampled
// case; a dozen cases per property keeps the suite fast while still
// varying writer counts, fan-outs, and drain sizes.
check::config quick_config() {
  check::config cfg;
  cfg.cases = 12;
  return cfg;
}

TEST(ExecutorConformance, ThreadPoolSatisfiesExecutorLaws) {
  expect_all_ok(check::executor_properties(
      "thread_pool",
      [] {
        return std::make_unique<par::thread_pool>(
            par::pool_options{.workers = 3});
      },
      quick_config()));
}

TEST(ExecutorConformance, BoundedThreadPoolSatisfiesExecutorLaws) {
  // Capacity backpressure must not change the semantics, only the pacing.
  expect_all_ok(check::executor_properties(
      "thread_pool[bounded]",
      [] {
        return std::make_unique<par::thread_pool>(
            par::pool_options{.workers = 2, .queue_capacity = 8});
      },
      quick_config()));
}

TEST(ExecutorConformance, WorkStealingPoolSatisfiesExecutorLaws) {
  expect_all_ok(check::executor_properties(
      "work_stealing_pool",
      [] {
        return std::make_unique<par::work_stealing_pool>(
            par::pool_options{.workers = 3, .steal_attempts = 2});
      },
      quick_config()));
}

TEST(ExecutorConformance, SingleWorkerStealingPoolSatisfiesExecutorLaws) {
  // Width 1 is the degenerate schedule where helping is the ONLY way
  // nested fork-join can finish — the deadlock regression lives here.
  expect_all_ok(check::executor_properties(
      "work_stealing_pool[w1]",
      [] {
        return std::make_unique<par::work_stealing_pool>(
            par::pool_options{.workers = 1});
      },
      quick_config()));
}

TEST(ExecutorConformance, ArchetypeSatisfiesExecutorLaws) {
  expect_all_ok(check::executor_properties(
      "executor_archetype",
      [] { return std::make_unique<par::executor_archetype>(); },
      quick_config()));
}

}  // namespace
