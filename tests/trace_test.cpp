// Tests for the causal tracing layer: span identity and nesting, the
// bounded lock-sharded sink, Chrome trace-event export round-tripped
// through the bundled JSON parser, context propagation across
// thread_pool::submit and across distributed::network ranks, provenance
// instants from the rewriter and STLlint, and the trace validator's
// negative cases.
#include <gtest/gtest.h>

#include <latch>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "distributed/network.hpp"
#include "parallel/thread_pool.hpp"
#include "rewrite/engine.hpp"
#include "rewrite/parser.hpp"
#include "stllint/stllint.hpp"
#include "telemetry/export.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace cgp;
namespace trace = telemetry::trace;

/// The tests share the global sink (that is what the subsystem hooks write
/// to); each one starts from a clean slate and restores the default cap.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::sink::global().set_max_events(trace::sink::kDefaultMaxEvents);
    trace::sink::global().clear();
  }
  void TearDown() override {
    trace::sink::global().set_max_events(trace::sink::kDefaultMaxEvents);
    trace::sink::global().clear();
  }

  static trace::validation_result export_and_validate() {
    const std::string json = trace::sink::global().export_chrome_trace();
    return trace::validate_chrome_trace(telemetry::parse_json(json));
  }

  static std::vector<trace::event> events_named(const std::string& name) {
    std::vector<trace::event> out;
    for (const trace::event& e : trace::sink::global().snapshot())
      if (e.name == name) out.push_back(e);
    return out;
  }
};

// ---------------------------------------------------------------------------
// spans and context
// ---------------------------------------------------------------------------

TEST_F(TraceTest, RootSpanAllocatesIdentityAndBalances) {
  trace::span_context root_ctx;
  {
    trace::trace_span root("root", "test");
    root_ctx = root.context();
    EXPECT_TRUE(root_ctx.active());
    EXPECT_EQ(trace::current_context(), root_ctx);
  }
  EXPECT_FALSE(trace::current_context().active());
  const auto events = trace::sink::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ph, trace::event::phase::begin);
  EXPECT_EQ(events[0].link, trace::event::link_kind::root);
  EXPECT_EQ(events[0].parent_span, 0u);
  EXPECT_EQ(events[1].ph, trace::event::phase::end);
  EXPECT_EQ(events[1].span_id, root_ctx.span_id);
}

TEST_F(TraceTest, NestedSpansLinkAsScopeChildren) {
  {
    trace::trace_span root("root", "test");
    trace::trace_span child("child", "test");
    EXPECT_EQ(child.context().trace_id, root.context().trace_id);
  }
  const auto begins = events_named("child");
  ASSERT_FALSE(begins.empty());
  EXPECT_EQ(begins[0].link, trace::event::link_kind::scope);
  EXPECT_EQ(begins[0].parent_span, events_named("root")[0].span_id);
}

TEST_F(TraceTest, HooksAreSilentWithoutActiveContext) {
  trace::child_span silent("never.recorded", "test");
  EXPECT_FALSE(silent.recording());
  trace::instant("never.recorded.instant", "test");
  EXPECT_EQ(trace::flow_begin("never.recorded.flow"), 0u);
  trace::flow_end(0, "never.recorded.flow");
  EXPECT_EQ(trace::sink::global().size(), 0u);
}

TEST_F(TraceTest, ContextScopeAdoptionLinksAsAsync) {
  trace::span_context captured;
  {
    trace::trace_span root("root", "test");
    captured = root.context();
    {
      trace::context_scope adopt(captured);
      trace::trace_span adopted("adopted", "test");
      EXPECT_EQ(adopted.context().trace_id, captured.trace_id);
    }
    // The scope restored the original context (and its non-adopted state).
    EXPECT_EQ(trace::current_context(), captured);
    trace::trace_span sibling("sibling", "test");
  }
  EXPECT_EQ(events_named("adopted")[0].link, trace::event::link_kind::async);
  EXPECT_EQ(events_named("sibling")[0].link, trace::event::link_kind::scope);
  const auto v = export_and_validate();
  EXPECT_TRUE(v.ok) << v.error_text();
  EXPECT_EQ(v.spans, 3u);
  EXPECT_EQ(v.traces, 1u);
}

// ---------------------------------------------------------------------------
// the bounded sink
// ---------------------------------------------------------------------------

TEST_F(TraceTest, MaxEventsCapDropsNewEventsAndCounts) {
  auto& sink = trace::sink::global();
  // Tiny cap: one recording thread maps to one shard, whose slice is
  // max_events / kShards.
  sink.set_max_events(2 * trace::sink::kShards);
  const std::uint64_t before =
      telemetry::registry::global()
          .get_counter("telemetry.trace.dropped_events")
          .value();
  for (int i = 0; i < 8; ++i) trace::trace_span span("overflow", "test");
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.dropped(), 14u);
  EXPECT_EQ(telemetry::registry::global()
                .get_counter("telemetry.trace.dropped_events")
                .value() -
                before,
            14u);
  // The export reports the truncation instead of hiding it.
  const auto doc = telemetry::parse_json(sink.export_chrome_trace());
  EXPECT_EQ(doc.at("otherData").at("dropped_events").num, 14.0);
  EXPECT_EQ(doc.at("otherData").at("max_events").num,
            2.0 * trace::sink::kShards);
}

TEST_F(TraceTest, DropAccountingSurvivesExportRoundTrip) {
  // Regression: the drop counter must survive a full serialize -> parse ->
  // re-serialize -> parse cycle, not just appear in the first export — a
  // consumer that rewrites the document (as bench/trace_export does when it
  // stamps the environment block) must not lose the truncation record.
  auto& sink = trace::sink::global();
  sink.set_max_events(2 * trace::sink::kShards);
  for (int i = 0; i < 8; ++i) trace::trace_span span("overflow", "test");
  ASSERT_GT(sink.dropped(), 0u);

  const auto once = telemetry::parse_json(sink.export_chrome_trace());
  const auto twice = telemetry::parse_json(telemetry::dump_json(once));
  EXPECT_EQ(twice.at("otherData").at("dropped_events").num,
            static_cast<double>(sink.dropped()));
  EXPECT_EQ(twice.at("otherData").at("max_events").num,
            once.at("otherData").at("max_events").num);
}

TEST_F(TraceTest, ExportRoundTripsThroughBundledJsonParser) {
  {
    trace::trace_span root("root", "test");
    root.arg("key", "value \"quoted\" \\ and\nnewline");
    trace::instant("marker", "test", {{"detail", "x"}});
    const std::uint64_t flow = trace::flow_begin("arrow", "test");
    trace::flow_end(flow, "arrow", "test");
  }
  const std::string json = trace::sink::global().export_chrome_trace();
  const auto doc = telemetry::parse_json(json);  // throws on malformed JSON
  ASSERT_TRUE(doc.at("traceEvents").is(telemetry::json_value::kind::array));
  EXPECT_EQ(doc.at("traceEvents").arr.size(), 5u);
  const auto v = trace::validate_chrome_trace(doc);
  EXPECT_TRUE(v.ok) << v.error_text();
  EXPECT_EQ(v.spans, 1u);
  EXPECT_EQ(v.instants, 1u);
  EXPECT_EQ(v.flows, 1u);
  EXPECT_EQ(v.roots, 1u);
}

// ---------------------------------------------------------------------------
// propagation across the thread pool
// ---------------------------------------------------------------------------

TEST_F(TraceTest, SubmitPropagatesContextToWorkers) {
  trace::span_context root_ctx;
  {
    trace::trace_span root("root", "test");
    root_ctx = root.context();
    parallel::thread_pool pool(2);
    // The latch forces the two tasks onto two distinct workers.
    std::latch rendezvous(2);
    std::latch finished(2);
    for (int i = 0; i < 2; ++i)
      pool.submit([&] {
        rendezvous.arrive_and_wait();
        EXPECT_EQ(trace::current_context().trace_id, root_ctx.trace_id);
        finished.count_down();
      });
    finished.wait();
  }
  const auto tasks = events_named("parallel.thread_pool.task");
  std::set<std::uint32_t> tids;
  for (const trace::event& e : tasks)
    if (e.ph == trace::event::phase::begin) {
      tids.insert(e.tid);
      EXPECT_EQ(e.trace_id, root_ctx.trace_id);
      EXPECT_EQ(e.parent_span, root_ctx.span_id);
      EXPECT_EQ(e.link, trace::event::link_kind::async);
    }
  EXPECT_EQ(tids.size(), 2u);
  const auto v = export_and_validate();
  EXPECT_TRUE(v.ok) << v.error_text();
  EXPECT_EQ(v.traces, 1u);
  EXPECT_GE(v.threads, 3u);  // caller + two workers
  EXPECT_EQ(v.flows, 2u);    // one submit arrow per task
}

TEST_F(TraceTest, UntracedSubmitRecordsNothing) {
  parallel::thread_pool pool(2);
  std::latch finished(4);
  for (int i = 0; i < 4; ++i) pool.submit([&] { finished.count_down(); });
  finished.wait();
  EXPECT_EQ(trace::sink::global().size(), 0u);
}

// ---------------------------------------------------------------------------
// propagation across distributed ranks
// ---------------------------------------------------------------------------

/// Two-node ping-pong: node 0 sends "ping" on start, node 1 answers
/// "pong" from its receive handler (so the pong's causal parent is the
/// ping's delivery span).
class pingpong : public distributed::process {
 public:
  explicit pingpong(int id) : id_(id) {}
  void start(distributed::context& ctx) override {
    if (id_ == 0) ctx.send(1, "ping", {1});
  }
  void receive(distributed::context& ctx,
               const distributed::message& m) override {
    if (m.tag == "ping") ctx.send(m.src, "pong", {2});
    if (m.tag == "pong") ctx.decide("done", 1);
  }

 private:
  int id_;
};

TEST_F(TraceTest, MessageEnvelopeCarriesContextAcrossRanks) {
  trace::span_context root_ctx;
  {
    trace::trace_span root("root", "test");
    root_ctx = root.context();
    distributed::sim_transport net({.nodes = 2});
    net.spawn([](int id) { return std::make_unique<pingpong>(id); });
    (void)net.run(8);
    EXPECT_EQ(net.decision(0, "done"), 1);
  }
  const auto recv_ping = events_named("recv.ping");
  const auto recv_pong = events_named("recv.pong");
  ASSERT_FALSE(recv_ping.empty());
  ASSERT_FALSE(recv_pong.empty());
  // Delivery spans land on the receiving rank's pid lane, stay in the
  // root's trace, and link async under the SEND site: the pong's parent
  // is the ping's delivery span — one causal chain across both ranks.
  EXPECT_EQ(recv_ping[0].pid, 1);
  EXPECT_EQ(recv_pong[0].pid, 0);
  EXPECT_EQ(recv_ping[0].trace_id, root_ctx.trace_id);
  EXPECT_EQ(recv_pong[0].trace_id, root_ctx.trace_id);
  EXPECT_EQ(recv_ping[0].link, trace::event::link_kind::async);
  EXPECT_EQ(recv_pong[0].parent_span, recv_ping[0].span_id);
  const auto v = export_and_validate();
  EXPECT_TRUE(v.ok) << v.error_text();
  EXPECT_EQ(v.traces, 1u);
  EXPECT_GE(v.ranks, 2u);
  EXPECT_EQ(v.flows, 2u);  // ping + pong arrows
}

TEST_F(TraceTest, UntracedNetworkRunRecordsNothing) {
  distributed::sim_transport net({.nodes = 2});
  net.spawn([](int id) { return std::make_unique<pingpong>(id); });
  (void)net.run(8);
  EXPECT_EQ(trace::sink::global().size(), 0u);
}

// ---------------------------------------------------------------------------
// provenance instants from the rewriter and STLlint
// ---------------------------------------------------------------------------

TEST_F(TraceTest, RewriteStepsBecomeInstantEvents) {
  {
    trace::trace_span root("root", "test");
    rewrite::simplifier simp;
    simp.add_default_concept_rules();
    (void)simp.simplify(
        rewrite::parse_expr("(x + 0) * 1", {{"x", "int"}}));
  }
  const auto steps = events_named("rewrite.step");
  ASSERT_GE(steps.size(), 2u);  // x+0 -> x, then x*1 -> x
  for (const trace::event& e : steps) {
    EXPECT_EQ(e.ph, trace::event::phase::instant);
    bool has_rule = false, has_before = false, has_after = false;
    for (const auto& [k, v] : e.args) {
      has_rule |= k == "rule" && !v.empty();
      has_before |= k == "before";
      has_after |= k == "after";
    }
    EXPECT_TRUE(has_rule && has_before && has_after);
  }
  const auto v = export_and_validate();
  EXPECT_TRUE(v.ok) << v.error_text();
}

TEST_F(TraceTest, StllintDiagnosticsBecomeInstantEventsWithProvenance) {
  {
    trace::trace_span root("root", "test");
    const auto r = stllint::lint_source(R"(
void f(vector<int>& v) {
  vector<int>::iterator it = v.begin();
  v.push_back(1);
  use(*it);
}
)");
    EXPECT_FALSE(r.clean());
  }
  const auto diags = events_named("stllint.diagnostic");
  ASSERT_FALSE(diags.empty());
  bool has_provenance = false;
  for (const auto& [k, v] : diags[0].args)
    has_provenance |= k == "provenance" && !v.empty();
  EXPECT_TRUE(has_provenance);
  const auto v = export_and_validate();
  EXPECT_TRUE(v.ok) << v.error_text();
}

// ---------------------------------------------------------------------------
// validator negative cases
// ---------------------------------------------------------------------------

TEST_F(TraceTest, ValidatorFlagsUnbalancedAndOrphanedTraces) {
  const auto validate_text = [](const std::string& text) {
    return trace::validate_chrome_trace(telemetry::parse_json(text));
  };
  const auto ev = [](const char* ph, double ts, std::uint64_t span,
                     std::uint64_t parent, const char* link, int tid = 1) {
    std::string s = "{\"name\":\"x\",\"cat\":\"t\",\"ph\":\"";
    s += ph;
    s += "\",\"ts\":" + std::to_string(ts) +
         ",\"pid\":0,\"tid\":" + std::to_string(tid);
    s += ",\"args\":{\"trace_id\":1,\"span_id\":" + std::to_string(span);
    s += ",\"parent_span\":" + std::to_string(parent);
    s += ",\"seq\":" + std::to_string(static_cast<std::uint64_t>(ts));
    s += ",\"link\":\"" + std::string(link) + "\"}}";
    return s;
  };
  const auto doc = [](std::initializer_list<std::string> events) {
    std::string s = "{\"traceEvents\":[";
    bool first = true;
    for (const std::string& e : events) {
      if (!first) s += ",";
      first = false;
      s += e;
    }
    return s + "],\"otherData\":{}}";
  };

  // Begin with no end: unbalanced.
  auto v = validate_text(doc({ev("B", 1, 10, 0, "root")}));
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error_text().find("never ended"), std::string::npos);

  // Parent id that appears nowhere: orphaned.
  v = validate_text(doc({ev("B", 1, 10, 99, "scope"),
                         ev("E", 2, 10, 0, "scope")}));
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error_text().find("unknown parent"), std::string::npos);

  // Scope child (on its own lane) outliving its parent: out of parent
  // scope.
  v = validate_text(doc({ev("B", 1, 10, 0, "root"),
                         ev("B", 2, 11, 10, "scope", 2),
                         ev("E", 3, 10, 0, "root"),
                         ev("E", 4, 11, 0, "scope", 2)}));
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error_text().find("out of parent scope"), std::string::npos);

  // The same shape under an async link is legal (adopted contexts only
  // promise causal order).
  v = validate_text(doc({ev("B", 1, 10, 0, "root"),
                         ev("B", 2, 11, 10, "async", 2),
                         ev("E", 3, 10, 0, "root"),
                         ev("E", 4, 11, 0, "async", 2)}));
  EXPECT_TRUE(v.ok) << v.error_text();
}

// ---------------------------------------------------------------------------
// counter tracks
// ---------------------------------------------------------------------------

TEST_F(TraceTest, CounterSamplesRecordOnlyUnderATrace) {
  // Untraced: silent, like every other hook.
  trace::counter_sample("metrics.silent", 1.0);
  trace::sample_registry_counters("anything.");
  EXPECT_EQ(trace::sink::global().size(), 0u);

  {
    trace::trace_span root("root", "test");
    trace::counter_sample("metrics.visible", 42.5);
  }
  const auto samples = events_named("metrics.visible");
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].ph, trace::event::phase::counter);
  EXPECT_DOUBLE_EQ(samples[0].value, 42.5);
}

TEST_F(TraceTest, RegistrySamplingExportsValidatedCounterTracks) {
  auto& reg = telemetry::registry::global();
  reg.get_counter("tracectr.a").add(3);
  reg.get_counter("tracectr.b").add(9);
  reg.get_counter("othersys.c").add(100);
  {
    trace::trace_span root("root", "test");
    trace::sample_registry_counters("tracectr.");
  }

  const std::string json = trace::sink::global().export_chrome_trace();
  const auto doc = telemetry::parse_json(json);
  // Each 'C' event carries exactly the plotted series in args.value
  // (extra keys would become their own Perfetto series).
  std::size_t counter_events = 0;
  for (const auto& e : doc.at("traceEvents").arr) {
    if (e.at("ph").str != "C") continue;
    ++counter_events;
    EXPECT_EQ(e.at("name").str.rfind("tracectr.", 0), 0u);
    ASSERT_TRUE(e.at("args").has("value"));
    EXPECT_TRUE(e.at("args").at("value").is(telemetry::json_value::kind::number));
  }
  EXPECT_EQ(counter_events, 2u);

  const auto v = trace::validate_chrome_trace(doc);
  EXPECT_TRUE(v.ok) << v.error_text();
  EXPECT_EQ(v.counters, 2u);
}

TEST_F(TraceTest, ValidatorRejectsCounterWithoutNumericValue) {
  const auto validate_text = [](const std::string& text) {
    return trace::validate_chrome_trace(telemetry::parse_json(text));
  };
  // A counter event with no args.value is not plottable.
  auto v = validate_text(
      "{\"traceEvents\":[{\"name\":\"m\",\"cat\":\"c\",\"ph\":\"C\","
      "\"ts\":1,\"pid\":0,\"tid\":1,\"args\":{}}],\"otherData\":{}}");
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error_text().find("value"), std::string::npos);
  // A nameless counter has no track to land on.
  v = validate_text(
      "{\"traceEvents\":[{\"name\":\"\",\"cat\":\"c\",\"ph\":\"C\","
      "\"ts\":1,\"pid\":0,\"tid\":1,\"args\":{\"value\":1}}],"
      "\"otherData\":{}}");
  EXPECT_FALSE(v.ok);
  // A well-formed counter among spans validates and is counted.
  v = validate_text(
      "{\"traceEvents\":[{\"name\":\"m\",\"cat\":\"c\",\"ph\":\"C\","
      "\"ts\":1,\"pid\":0,\"tid\":1,\"args\":{\"value\":3.5}}],"
      "\"otherData\":{}}");
  EXPECT_TRUE(v.ok) << v.error_text();
  EXPECT_EQ(v.counters, 1u);
}

// ---------------------------------------------------------------------------
// caret rendering (the diagnostic's human-facing form)
// ---------------------------------------------------------------------------

TEST_F(TraceTest, DiagnosticsCarryProvenanceAndRenderWithCaret) {
  const auto r = stllint::lint_source(R"(
void f(vector<int>& v) {
  vector<int>::iterator it = v.begin();
  v.push_back(1);
  use(*it);
}
)");
  ASSERT_FALSE(r.diags.empty());
  const stllint::diagnostic& d = r.diags.front();
  EXPECT_FALSE(d.provenance.empty());
  // The trail ends at (or after) the invalidating push_back.
  bool mentions_push_back = false;
  for (const stllint::provenance_step& s : d.provenance)
    mentions_push_back |= s.action.find("push_back") != std::string::npos;
  EXPECT_TRUE(mentions_push_back);
  const std::string rendered = stllint::render_caret(d);
  EXPECT_NE(rendered.find("--> line"), std::string::npos);
  EXPECT_NE(rendered.find("^"), std::string::npos);
  EXPECT_NE(rendered.find("provenance:"), std::string::npos);
}

}  // namespace
