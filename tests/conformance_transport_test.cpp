// Conformance suite: randomized THREE-WAY differential testing of the
// Transport backends.  The determinism contract (network.hpp) says a
// synchronous run's decisions and statistics are identical on every
// backend for a fixed seed; here that parity is re-verified between the
// sequential simulator, the executor-fan-out parallel backend, and the
// shared-memory mailbox inproc backend under RANDOMIZED topologies (all
// nine builders, including the scale-era torus/random_regular/power_law),
// node counts, seeds, channel orders, fault knobs, and churn schedules,
// rather than the hand-picked configurations of transport_test.cpp.  Any
// mismatch prints a CGP_CHECK_SEED line that replays the exact
// configuration.  A fixed 100k-node case keeps the oracle honest at scale
// inside tier-1 (the million-node twin lives in distributed_scale_test.cpp
// under the `slow` label).
#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "check/gtest_support.hpp"
#include "check/property.hpp"
#include "distributed/algorithms.hpp"
#include "distributed/inproc_transport.hpp"
#include "distributed/network.hpp"
#include "distributed/parallel_transport.hpp"

namespace check = cgp::check;
namespace dist = cgp::distributed;

CGP_REGISTER_SEED_BANNER();

namespace {

struct outcome {
  dist::run_stats stats;
  std::map<std::pair<int, std::string>, long> decisions;
};

struct plan {
  dist::net_options opts;
  int crash_node = -1;  ///< < 0: no crash
  std::size_t crash_round = 0;
};

/// Derives a full run configuration from one generated 64-bit value, so a
/// parity failure shrinks/replays through the ordinary seed machinery.
plan random_plan(check::random_source& rs, bool with_faults) {
  const auto topos = dist::all_topologies();
  plan p;
  p.opts.nodes = 2 + rs.below(31);  // 2..32: several shards per worker
  p.opts.topo = topos[rs.below(topos.size())];
  p.opts.mode = dist::timing::synchronous;  // parallel/inproc are sync-only
  p.opts.seed = static_cast<std::uint32_t>(rs.bits());
  p.opts.fifo_links = rs.chance(50);
  p.opts.workers = static_cast<unsigned>(2 + rs.below(3));
  if (with_faults) {
    p.opts.faults.drop = 0.1 * static_cast<double>(rs.below(4));       // 0..0.3
    p.opts.faults.duplicate = 0.1 * static_cast<double>(rs.below(4));  // 0..0.3
    if (rs.chance(30)) {
      p.crash_node = static_cast<int>(rs.below(p.opts.nodes));
      p.crash_round = rs.below(4);
    }
    if (rs.chance(40)) {
      // A churn schedule: the per-(node, round) hash draws must replay
      // identically on every backend.
      p.opts.faults.churn_crash = 0.05 * static_cast<double>(1 + rs.below(3));
      p.opts.faults.churn_recover = 0.2;
      p.opts.faults.churn_until = 2 + rs.below(6);
    }
  }
  return p;
}

template <class Transport>
outcome run_on(const plan& p, const dist::process_factory& factory) {
  Transport net(p.opts);
  net.spawn(factory);
  if (p.crash_node >= 0) net.crash(p.crash_node, p.crash_round);
  outcome out;
  out.stats = net.run(500);
  out.decisions = net.all_decisions();
  return out;
}

bool stats_equal(const dist::run_stats& a, const dist::run_stats& b) {
  return a.messages_total == b.messages_total &&
         a.messages_dropped == b.messages_dropped &&
         a.messages_duplicated == b.messages_duplicated &&
         a.messages_by_tag == b.messages_by_tag && a.rounds == b.rounds &&
         a.local_steps == b.local_steps &&
         a.local_steps_per_node == b.local_steps_per_node &&
         a.messages_sent_per_node == b.messages_sent_per_node &&
         a.messages_received_per_node == b.messages_received_per_node;
}

bool backends_agree(const plan& p, const dist::process_factory& factory) {
  const outcome sim = run_on<dist::sim_transport>(p, factory);
  const outcome par = run_on<dist::parallel_transport>(p, factory);
  const outcome inp = run_on<dist::inproc_transport>(p, factory);
  return sim.decisions == par.decisions && stats_equal(sim.stats, par.stats) &&
         sim.decisions == inp.decisions && stats_equal(sim.stats, inp.stats);
}

check::config parity_config() {
  check::config cfg;
  cfg.cases = 25;  // each case runs two full networks
  return cfg;
}

}  // namespace

TEST(TransportConformance, FloodingParityUnderRandomizedTopologiesAndFaults) {
  const auto res = check::for_all<std::uint64_t>(
      "transport.parity.flooding",
      [](std::uint64_t raw) {
        check::random_source rs(raw);
        const plan p = random_plan(rs, /*with_faults=*/true);
        return backends_agree(p, dist::flooding_broadcast(0));
      },
      parity_config());
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(TransportConformance, EchoWaveParityUnderRandomizedFaults) {
  const auto res = check::for_all<std::uint64_t>(
      "transport.parity.echo_wave",
      [](std::uint64_t raw) {
        check::random_source rs(raw);
        const plan p = random_plan(rs, /*with_faults=*/true);
        return backends_agree(p, dist::echo_wave(0));
      },
      parity_config());
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(TransportConformance, LeaderElectionParityOnRandomizedRings) {
  const auto res = check::for_all<std::uint64_t>(
      "transport.parity.lcr",
      [](std::uint64_t raw) {
        check::random_source rs(raw);
        plan p = random_plan(rs, /*with_faults=*/true);
        p.opts.topo = dist::topology::ring;  // LCR is a ring algorithm
        p.crash_node = -1;  // LCR's termination assumes live nodes
        return backends_agree(p, dist::lcr_leader_election());
      },
      parity_config());
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(TransportConformance, ParallelBackendIsSelfDeterministic) {
  // Two runs of the SAME randomized configuration on the parallel backend
  // must agree with each other — scheduling nondeterminism must never leak
  // into decisions or statistics.
  const auto res = check::for_all<std::uint64_t>(
      "transport.parallel.self_determinism",
      [](std::uint64_t raw) {
        check::random_source rs(raw);
        const plan p = random_plan(rs, /*with_faults=*/true);
        const auto a = run_on<dist::parallel_transport>(
            p, dist::bfs_spanning_tree(0));
        const auto b = run_on<dist::parallel_transport>(
            p, dist::bfs_spanning_tree(0));
        return a.decisions == b.decisions && stats_equal(a.stats, b.stats);
      },
      parity_config());
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(TransportConformance, InprocBackendIsSelfDeterministic) {
  // Same for the shared-memory mailbox backend: cross-thread sends race on
  // the destination mailboxes, but the canonical sort before delivery must
  // erase any interleaving difference between runs.
  const auto res = check::for_all<std::uint64_t>(
      "transport.inproc.self_determinism",
      [](std::uint64_t raw) {
        check::random_source rs(raw);
        const plan p = random_plan(rs, /*with_faults=*/true);
        const auto a =
            run_on<dist::inproc_transport>(p, dist::bfs_spanning_tree(0));
        const auto b =
            run_on<dist::inproc_transport>(p, dist::bfs_spanning_tree(0));
        return a.decisions == b.decisions && stats_equal(a.stats, b.stats);
      },
      parity_config());
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(TransportConformance, ThreeWayParityAtHundredThousandNodes) {
  // One fixed large configuration inside tier-1: flooding over a 100k-node
  // random connected graph with drops and duplicates.  All three backends
  // must agree bit-for-bit on decisions and the full per-node statistics
  // vectors.  (The million-node twin lives under the `slow` label.)
  plan p;
  p.opts.nodes = 100'000;
  p.opts.topo = dist::topology::random_connected;
  p.opts.mode = dist::timing::synchronous;
  p.opts.seed = 0xC5Au;
  p.opts.workers = 4;
  p.opts.faults.drop = 0.05;
  p.opts.faults.duplicate = 0.05;
  const auto factory = dist::flooding_broadcast(0);
  const outcome sim = run_on<dist::sim_transport>(p, factory);
  const outcome par = run_on<dist::parallel_transport>(p, factory);
  const outcome inp = run_on<dist::inproc_transport>(p, factory);
  EXPECT_GT(sim.stats.messages_total, 100'000u);  // the run actually flooded
  EXPECT_TRUE(stats_equal(sim.stats, par.stats));
  EXPECT_TRUE(stats_equal(sim.stats, inp.stats));
  EXPECT_EQ(sim.decisions, par.decisions);
  EXPECT_EQ(sim.decisions, inp.decisions);
}
