// Tests for linalg: the Fig. 3 Vector Space multi-type concept and the
// CLACRM-style mixed-precision kernels.
#include <gtest/gtest.h>

#include <random>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace cgp::linalg {
namespace {

using cf = std::complex<float>;

// ---------------------------------------------------------------------------
// Fig. 3: Vector Space as a two-type concept
// ---------------------------------------------------------------------------

// vec<complex<float>> is a vector space over float AND over complex<float>:
// the scalar is an independent constrained type.
static_assert(core::VectorSpace<vec<cf>, float>);
static_assert(core::VectorSpace<vec<cf>, cf>);
static_assert(core::VectorSpace<vec<double>, double>);
static_assert(core::AdditiveAbelianGroup<vec<cf>>);
// int is not a Field, so vec<int> over int is NOT a vector space.
static_assert(!core::VectorSpace<vec<int>, int>);

TEST(Vec, AdditionAndIdentity) {
  const vec<double> a{1.0, 2.0};
  const vec<double> b{10.0, 20.0};
  EXPECT_EQ((a + b), (vec<double>{11.0, 22.0}));
  // The empty vector is the additive identity of every dimension.
  const auto zero = core::identity_element<vec<double>, std::plus<>>();
  EXPECT_EQ(a + zero, a);
  EXPECT_EQ(zero + a, a);
  // Group inverse.
  const auto neg = core::inverse_element<vec<double>, std::plus<>>(a);
  EXPECT_EQ(neg, (vec<double>{-1.0, -2.0}));
}

TEST(Vec, DimensionMismatchThrows) {
  const vec<double> a{1.0, 2.0};
  const vec<double> b{1.0, 2.0, 3.0};
  EXPECT_THROW((void)(a + b), std::invalid_argument);
}

TEST(Vec, MixedScalarMultiplication) {
  const vec<cf> v{{1.0f, 2.0f}, {3.0f, -1.0f}};
  const vec<cf> scaled = mult(v, 2.0f);  // Fig. 3: mult(v, s)
  EXPECT_EQ(scaled[0], cf(2.0f, 4.0f));
  EXPECT_EQ(scaled[1], cf(6.0f, -2.0f));
  EXPECT_EQ(mult(2.0f, v), scaled);  // Fig. 3: mult(s, v)
}

TEST(Vec, MixedAndPromotedAgreeNumerically) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> d(-10.0f, 10.0f);
  vec<cf> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = cf(d(rng), d(rng));
  const float s = d(rng);
  const vec<cf> mixed = mult(v, s);
  const vec<cf> promoted = mult(v, cf(s, 0.0f));
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(mixed[i].real(), promoted[i].real(), 1e-4f);
    EXPECT_NEAR(mixed[i].imag(), promoted[i].imag(), 1e-4f);
  }
}

// ---------------------------------------------------------------------------
// matrices and CLACRM
// ---------------------------------------------------------------------------

TEST(Matrix, IdentityAndGemm) {
  const auto I = matrix<double>::identity(3);
  matrix<double> a(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      a(i, j) = static_cast<double>(i * 3 + j);
  EXPECT_EQ(gemm(a, I), a);
  EXPECT_EQ(gemm(I, a), a);
}

TEST(Matrix, GemmKnownProduct) {
  matrix<double> a(2, 3);
  matrix<double> b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(std::begin(av), std::end(av), a.data());
  std::copy(std::begin(bv), std::end(bv), b.data());
  const auto c = gemm(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, GemmDimensionMismatchThrows) {
  matrix<double> a(2, 3);
  matrix<double> b(2, 2);
  EXPECT_THROW((void)gemm(a, b), std::invalid_argument);
}

class Clacrm : public ::testing::TestWithParam<int> {};

TEST_P(Clacrm, MixedEqualsPromoted) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<float> d(-5.0f, 5.0f);
  const std::size_t m = 7, k = 9, n = 5;
  matrix<cf> a(m, k);
  matrix<float> b(k, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < k; ++j) a(i, j) = cf(d(rng), d(rng));
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < n; ++j) b(i, j) = d(rng);
  const auto mixed = clacrm_mixed(a, b);
  const auto promoted = clacrm_promoted(a, b);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(mixed(i, j).real(), promoted(i, j).real(), 1e-2f);
      EXPECT_NEAR(mixed(i, j).imag(), promoted(i, j).imag(), 1e-2f);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Clacrm, ::testing::Values(1, 2, 3, 4));

TEST(Axpy, MixedScalar) {
  std::vector<cf> x{cf(1, 1), cf(2, -1)};
  std::vector<cf> y{cf(0, 0), cf(1, 1)};
  axpy(2.0f, x, y);
  EXPECT_EQ(y[0], cf(2, 2));
  EXPECT_EQ(y[1], cf(5, -1));
}

TEST(Axpy, MismatchThrows) {
  std::vector<cf> x(2), y(3);
  EXPECT_THROW(axpy(1.0f, x, y), std::invalid_argument);
}

}  // namespace
}  // namespace cgp::linalg
