// Tests for the Transport concept boundary: the archetype proof
// obligations, backend parity between the deterministic simulator and the
// thread-pool backend, and the unified message-fault surface
// (drop / duplicate / delay) behaving identically on both.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/gtest_support.hpp"
#include "check/property.hpp"
#include "distributed/algorithms.hpp"
#include "distributed/parallel_transport.hpp"
#include "telemetry/trace.hpp"

CGP_REGISTER_SEED_BANNER();

namespace cgp::distributed {
namespace {

/// Every network seed in this file derives from the one documented seed
/// source (CGP_CHECK_SEED, default 42): the banner in the ctest log is
/// enough to reproduce any failure, instead of hunting ad-hoc constants.
/// Distinct call sites use distinct indices so their streams stay
/// independent.
std::uint32_t net_seed(std::uint64_t site) {
  return static_cast<std::uint32_t>(
      check::case_seed(check::default_seed(), site));
}

// ---------------------------------------------------------------------------
// concept + archetype
// ---------------------------------------------------------------------------

static_assert(Transport<sim_transport>);
static_assert(Transport<parallel_transport>);
static_assert(Transport<transport_archetype>);
static_assert(!Transport<int>);
static_assert(!Transport<run_stats>);

TEST(TransportConcept, DriversCompileAgainstTheArchetype) {
  // The archetype is the MINIMAL model: a driver instantiated with it
  // proves the driver needs no syntax beyond the concept.  Semantics are
  // the weakest legal ones — no messages, no decisions, no leader.
  const auto out =
      run_ring_election<transport_archetype>(lcr_leader_election(),
                                             {.nodes = 8});
  EXPECT_EQ(out.leaders, 0u);
  EXPECT_EQ(out.leader_node, -1);
  EXPECT_EQ(out.stats.messages_total, 0u);
}

TEST(TransportConcept, ArchetypeWiringIsMinimal) {
  transport_archetype t(net_options{.nodes = 3});
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.edge_count(), 0u);
  EXPECT_TRUE(t.neighbors_of(0).empty());
  EXPECT_FALSE(t.decision(0, "leader").has_value());
}

// ---------------------------------------------------------------------------
// parallel backend basics
// ---------------------------------------------------------------------------

TEST(ParallelTransport, AutoWorkerCountIsAtLeastTwo) {
  parallel_transport net({.nodes = 4});
  EXPECT_GE(net.workers(), 2u);
}

TEST(ParallelTransport, ExplicitWorkerCountIsHonored) {
  parallel_transport net({.nodes = 4, .workers = 3});
  EXPECT_EQ(net.workers(), 3u);
}

TEST(ParallelTransport, AsynchronousTimingIsRejected) {
  try {
    parallel_transport net({.nodes = 4, .mode = timing::asynchronous});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("synchronous"), std::string::npos);
  }
}

TEST(ParallelTransport, UntracedRunRecordsNoTraceEvents) {
  auto& sink = telemetry::trace::sink::global();
  sink.clear();
  parallel_transport net({.nodes = 8, .workers = 2});
  net.spawn(echo_wave(0));
  (void)net.run();
  EXPECT_EQ(sink.size(), 0u);
}

// ---------------------------------------------------------------------------
// backend parity: same seed -> identical decisions and statistics
// ---------------------------------------------------------------------------

struct parity_result {
  std::map<std::pair<int, std::string>, long> decisions;
  run_stats stats;
};

template <Transport T>
parity_result run_on(const process_factory& algo, const net_options& opts,
                     std::size_t max_rounds = 100000) {
  T net(opts);
  net.spawn(algo);
  parity_result out;
  out.stats = net.run(max_rounds);
  out.decisions = net.all_decisions();
  return out;
}

void expect_backends_agree(const process_factory& algo,
                           const net_options& opts) {
  const auto sim = run_on<sim_transport>(algo, opts);
  const auto par = run_on<parallel_transport>(algo, opts);
  EXPECT_EQ(sim.decisions, par.decisions);
  EXPECT_EQ(sim.stats.messages_total, par.stats.messages_total);
  EXPECT_EQ(sim.stats.messages_dropped, par.stats.messages_dropped);
  EXPECT_EQ(sim.stats.messages_duplicated, par.stats.messages_duplicated);
  EXPECT_EQ(sim.stats.messages_by_tag, par.stats.messages_by_tag);
  EXPECT_EQ(sim.stats.rounds, par.stats.rounds);
  EXPECT_EQ(sim.stats.local_steps, par.stats.local_steps);
  EXPECT_EQ(sim.stats.local_steps_per_node, par.stats.local_steps_per_node);
  EXPECT_EQ(sim.stats.messages_sent_per_node,
            par.stats.messages_sent_per_node);
  EXPECT_EQ(sim.stats.messages_received_per_node,
            par.stats.messages_received_per_node);
}

TEST(BackendParity, EchoWaveAcrossTopologies) {
  for (const topology topo :
       {topology::ring, topology::complete, topology::grid}) {
    SCOPED_TRACE(to_string(topo));
    expect_backends_agree(echo_wave(0),
                          {.nodes = 16, .topo = topo, .seed = net_seed(0)});
  }
}

TEST(BackendParity, BfsSpanningTreeAcrossTopologies) {
  for (const topology topo :
       {topology::ring, topology::complete, topology::grid}) {
    SCOPED_TRACE(to_string(topo));
    expect_backends_agree(bfs_spanning_tree(0),
                          {.nodes = 16, .topo = topo, .seed = net_seed(1)});
  }
}

TEST(BackendParity, AggregateSumAcrossTopologies) {
  for (const topology topo :
       {topology::ring, topology::complete, topology::grid}) {
    SCOPED_TRACE(to_string(topo));
    expect_backends_agree(aggregate_sum(0),
                          {.nodes = 9, .topo = topo, .seed = net_seed(2)});
  }
}

TEST(BackendParity, LeaderElectionOnParallelBackend) {
  const auto out = run_ring_election<parallel_transport>(
      lcr_leader_election(), {.nodes = 32, .seed = net_seed(3)});
  EXPECT_EQ(out.leaders, 1u);
  EXPECT_EQ(out.leader_uid, 32);
}

TEST(BackendParity, SixtyFourNodeEchoWaveOnCompleteTopology) {
  // The acceptance bar: 64 nodes, complete topology, >= 2 workers, and
  // the parallel run's decisions are byte-for-byte the simulator's.
  const net_options opts{.nodes = 64, .topo = topology::complete,
                         .seed = net_seed(4)};
  parallel_transport par(opts);
  ASSERT_GE(par.workers(), 2u);
  par.spawn(echo_wave(0));
  const auto par_stats = par.run();

  sim_transport sim(opts);
  sim.spawn(echo_wave(0));
  const auto sim_stats = sim.run();

  EXPECT_EQ(sim.all_decisions(), par.all_decisions());
  EXPECT_EQ(sim_stats.messages_total, par_stats.messages_total);
  EXPECT_EQ(sim_stats.messages_total, 2 * sim.edge_count());
  EXPECT_EQ(sim_stats.rounds, par_stats.rounds);
  EXPECT_EQ(par.deciders("done"), std::vector<int>{0});
}

TEST(BackendParity, CrashAndCorruptFaultsAgree) {
  // The node-level fault surface composes identically on both backends:
  // crash a star leaf, corrupt another, and compare everything.
  const net_options opts{.nodes = 12, .topo = topology::star, .seed = net_seed(5)};
  const auto corrupting = [](message& m) {
    if (!m.payload.empty()) m.payload[0] += 1000;
  };
  auto drive = [&](auto& net) {
    net.crash(5);
    net.corrupt(7, corrupting);
    net.spawn(flooding_broadcast(0));
    return net.run();
  };
  sim_transport sim(opts);
  const auto ss = drive(sim);
  parallel_transport par(opts);
  const auto ps = drive(par);
  EXPECT_EQ(sim.all_decisions(), par.all_decisions());
  EXPECT_EQ(ss.messages_total, ps.messages_total);
  EXPECT_EQ(ss.local_steps_per_node, ps.local_steps_per_node);
  EXPECT_FALSE(sim.decision(5, "got").has_value());
}

// ---------------------------------------------------------------------------
// message faults: drop / duplicate / delay
// ---------------------------------------------------------------------------

TEST(MessageFaults, DropLossesAreCountedAndBounded) {
  sim_transport net({.nodes = 16, .topo = topology::complete, .seed = net_seed(6),
                     .faults = {.drop = 0.25}});
  net.spawn(flooding_broadcast(0));
  const auto stats = net.run();
  EXPECT_GT(stats.messages_dropped, 0u);
  EXPECT_LT(stats.messages_dropped, stats.messages_total);
  // Dropped messages are sent-but-not-received.
  std::size_t received = 0;
  for (int v = 0; v < 16; ++v) received += stats.messages_received_by(v);
  EXPECT_EQ(received + stats.messages_dropped, stats.messages_total);
}

TEST(MessageFaults, DuplicatesAreCountedAndDeliveredTwice) {
  sim_transport net({.nodes = 8, .seed = net_seed(7),
                     .faults = {.duplicate = 0.5}});
  net.spawn(echo_wave(0));
  const auto stats = net.run();
  EXPECT_GT(stats.messages_duplicated, 0u);
  std::size_t received = 0;
  for (int v = 0; v < 8; ++v) received += stats.messages_received_by(v);
  // Every duplicate is one extra delivery on top of the originals.
  EXPECT_EQ(received, stats.messages_total + stats.messages_duplicated);
  // The echo wave is idempotent under duplication: root still terminates.
  EXPECT_EQ(net.deciders("done"), std::vector<int>{0});
}

TEST(MessageFaults, DelayPreservesCorrectnessOfIdempotentWaves) {
  // Delay injection is an asynchronous-mode fault (synchronous
  // construction rejects it — see FaultKnobValidation below).
  sim_transport net({.nodes = 16, .topo = topology::grid,
                     .mode = timing::asynchronous, .seed = net_seed(8),
                     .faults = {.max_delay = 3}});
  net.spawn(echo_wave(0));
  const auto stats = net.run();
  EXPECT_EQ(net.deciders("done"), std::vector<int>{0});
  EXPECT_EQ(net.deciders("parent").size(), 15u);
  EXPECT_EQ(stats.messages_dropped, 0u);
}

TEST(MessageFaults, FaultPlanIsIdenticalAcrossBackends) {
  // The fault decisions are drawn from a dedicated rng stream in canonical
  // routing order, so drop/duplicate runs agree across backends too.
  for (const std::uint64_t site : {9u, 10u, 11u}) {
    const std::uint32_t seed = net_seed(site);
    SCOPED_TRACE(seed);
    expect_backends_agree(
        flooding_broadcast(0),
        {.nodes = 16, .topo = topology::complete, .seed = seed,
         .faults = {.drop = 0.15, .duplicate = 0.10}});
  }
}

TEST(MessageFaults, AsynchronousRunsSupportMessageFaults) {
  sim_transport net({.nodes = 16, .topo = topology::complete,
                     .mode = timing::asynchronous, .seed = net_seed(12),
                     .faults = {.drop = 0.2, .duplicate = 0.1}});
  net.spawn(flooding_broadcast(0));
  const auto stats = net.run();
  EXPECT_GT(stats.messages_dropped, 0u);
  EXPECT_GT(stats.messages_duplicated, 0u);
  std::size_t received = 0;
  for (int v = 0; v < 16; ++v) received += stats.messages_received_by(v);
  EXPECT_EQ(received + stats.messages_dropped,
            stats.messages_total + stats.messages_duplicated);
}

// ---------------------------------------------------------------------------
// fault-knob validation: bad configurations fail at construction
// ---------------------------------------------------------------------------

TEST(FaultKnobValidation, RejectsMaxDelayInSynchronousMode) {
  try {
    sim_transport net({.nodes = 4, .faults = {.max_delay = 2}});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("max_delay"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("asynchronous"), std::string::npos);
  }
}

TEST(FaultKnobValidation, AcceptsMaxDelayInAsynchronousMode) {
  EXPECT_NO_THROW(sim_transport({.nodes = 4,
                                 .mode = timing::asynchronous,
                                 .faults = {.max_delay = 2}}));
}

TEST(FaultKnobValidation, RejectsOutOfRangeProbabilities) {
  EXPECT_THROW(sim_transport({.nodes = 4, .faults = {.drop = -0.1}}),
               std::invalid_argument);
  EXPECT_THROW(sim_transport({.nodes = 4, .faults = {.drop = 1.5}}),
               std::invalid_argument);
  EXPECT_THROW(sim_transport({.nodes = 4, .faults = {.duplicate = -1.0}}),
               std::invalid_argument);
  EXPECT_THROW(sim_transport({.nodes = 4, .faults = {.duplicate = 2.0}}),
               std::invalid_argument);
  // NaN is not a probability either.
  EXPECT_THROW(
      sim_transport({.nodes = 4, .faults = {.drop = std::nan("")}}),
      std::invalid_argument);
  // The error names the offending knob.
  try {
    sim_transport net({.nodes = 4, .faults = {.duplicate = 2.0}});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
}

TEST(FaultKnobValidation, BoundaryProbabilitiesAreAccepted) {
  EXPECT_NO_THROW(
      sim_transport({.nodes = 4, .faults = {.drop = 0.0, .duplicate = 0.0}}));
  EXPECT_NO_THROW(
      sim_transport({.nodes = 4, .faults = {.drop = 1.0, .duplicate = 1.0}}));
}

TEST(FaultKnobValidation, ParallelBackendSharesTheContract) {
  EXPECT_THROW(parallel_transport({.nodes = 4, .faults = {.drop = 2.0}}),
               std::invalid_argument);
  EXPECT_THROW(parallel_transport({.nodes = 4, .faults = {.max_delay = 1}}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// fault-ledger edge cases
// ---------------------------------------------------------------------------

TEST(FaultLedger, TotalLossKeepsCountersConsistent) {
  // drop = 1.0: every message is lost, yet the ledger must still balance
  // and the run must terminate rather than wait for deliveries.
  sim_transport net({.nodes = 16, .topo = topology::complete,
                     .seed = net_seed(13), .faults = {.drop = 1.0}});
  net.spawn(flooding_broadcast(0));
  const auto stats = net.run();
  EXPECT_GT(stats.messages_total, 0u);
  EXPECT_EQ(stats.messages_dropped, stats.messages_total);
  EXPECT_EQ(stats.messages_duplicated, 0u);
  std::size_t received = 0;
  for (int v = 0; v < 16; ++v) received += stats.messages_received_by(v);
  EXPECT_EQ(received, 0u);
  // Only the root ever learns the broadcast value.
  EXPECT_EQ(net.deciders("got"), std::vector<int>{0});
}

TEST(FaultLedger, DuplicatesUnderFifoChannelsStayConsistent) {
  // FIFO links constrain asynchronous delivery order; a duplicated copy
  // draws its own delay, so the clamp must keep the ledger identity
  // received + dropped == total + duplicated intact.
  sim_transport net({.nodes = 12, .topo = topology::complete,
                     .mode = timing::asynchronous, .seed = net_seed(14),
                     .fifo_links = true,
                     .faults = {.duplicate = 0.5, .max_delay = 4}});
  net.spawn(flooding_broadcast(0));
  const auto stats = net.run();
  EXPECT_GT(stats.messages_duplicated, 0u);
  EXPECT_EQ(stats.messages_dropped, 0u);
  std::size_t received = 0;
  for (int v = 0; v < 12; ++v) received += stats.messages_received_by(v);
  EXPECT_EQ(received, stats.messages_total + stats.messages_duplicated);
  // Flooding is idempotent: duplicates never change the outcome.
  EXPECT_EQ(net.deciders("got").size(), 12u);
}

TEST(FaultLedger, CrashDuringSuperstepAgreesAcrossBackends) {
  // A node crashing at a mid-run round kills it between supersteps; the
  // parallel backend must observe the crash at exactly the same boundary
  // as the simulator.
  const net_options opts{.nodes = 16, .topo = topology::grid,
                         .seed = net_seed(15)};
  auto drive = [&](auto& net) {
    net.spawn(bfs_spanning_tree(0));
    net.crash(5, /*at_round=*/2);
    return net.run();
  };
  sim_transport sim(opts);
  const auto ss = drive(sim);
  parallel_transport par(opts);
  const auto ps = drive(par);
  EXPECT_EQ(sim.all_decisions(), par.all_decisions());
  EXPECT_EQ(ss.messages_total, ps.messages_total);
  EXPECT_EQ(ss.local_steps_per_node, ps.local_steps_per_node);
  EXPECT_EQ(ss.messages_received_per_node, ps.messages_received_per_node);
  // The crashed node stops taking local steps once the crash round hits.
  sim_transport healthy(opts);
  healthy.spawn(bfs_spanning_tree(0));
  const auto hs = healthy.run();
  EXPECT_LT(ss.local_steps_per_node.at(5), hs.local_steps_per_node.at(5));
}

TEST(MessageFaults, FaultFreeRunsMatchTheLegacySeedStreams) {
  // faults = {} must leave the rng streams untouched: the default-seeded
  // election still elects uid n exactly as the pre-fault engine did.
  const auto out =
      run_ring_election(lcr_leader_election(), {.nodes = 8});
  EXPECT_EQ(out.leaders, 1u);
  EXPECT_EQ(out.leader_uid, 8);
  EXPECT_EQ(out.stats.messages_dropped, 0u);
  EXPECT_EQ(out.stats.messages_duplicated, 0u);
}

}  // namespace
}  // namespace cgp::distributed
