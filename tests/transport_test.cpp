// Tests for the Transport concept boundary: the archetype proof
// obligations, backend parity between the deterministic simulator and the
// thread-pool backend, and the unified message-fault surface
// (drop / duplicate / delay) behaving identically on both.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "distributed/algorithms.hpp"
#include "distributed/parallel_transport.hpp"
#include "telemetry/trace.hpp"

namespace cgp::distributed {
namespace {

// ---------------------------------------------------------------------------
// concept + archetype
// ---------------------------------------------------------------------------

static_assert(Transport<sim_transport>);
static_assert(Transport<parallel_transport>);
static_assert(Transport<transport_archetype>);
static_assert(!Transport<int>);
static_assert(!Transport<run_stats>);

TEST(TransportConcept, DriversCompileAgainstTheArchetype) {
  // The archetype is the MINIMAL model: a driver instantiated with it
  // proves the driver needs no syntax beyond the concept.  Semantics are
  // the weakest legal ones — no messages, no decisions, no leader.
  const auto out =
      run_ring_election<transport_archetype>(lcr_leader_election(),
                                             {.nodes = 8});
  EXPECT_EQ(out.leaders, 0u);
  EXPECT_EQ(out.leader_node, -1);
  EXPECT_EQ(out.stats.messages_total, 0u);
}

TEST(TransportConcept, ArchetypeWiringIsMinimal) {
  transport_archetype t(net_options{.nodes = 3});
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.edge_count(), 0u);
  EXPECT_TRUE(t.neighbors_of(0).empty());
  EXPECT_FALSE(t.decision(0, "leader").has_value());
}

// ---------------------------------------------------------------------------
// parallel backend basics
// ---------------------------------------------------------------------------

TEST(ParallelTransport, AutoWorkerCountIsAtLeastTwo) {
  parallel_transport net({.nodes = 4});
  EXPECT_GE(net.workers(), 2u);
}

TEST(ParallelTransport, ExplicitWorkerCountIsHonored) {
  parallel_transport net({.nodes = 4, .workers = 3});
  EXPECT_EQ(net.workers(), 3u);
}

TEST(ParallelTransport, AsynchronousTimingIsRejected) {
  try {
    parallel_transport net({.nodes = 4, .mode = timing::asynchronous});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("synchronous"), std::string::npos);
  }
}

TEST(ParallelTransport, UntracedRunRecordsNoTraceEvents) {
  auto& sink = telemetry::trace::sink::global();
  sink.clear();
  parallel_transport net({.nodes = 8, .workers = 2});
  net.spawn(echo_wave(0));
  (void)net.run();
  EXPECT_EQ(sink.size(), 0u);
}

// ---------------------------------------------------------------------------
// backend parity: same seed -> identical decisions and statistics
// ---------------------------------------------------------------------------

struct parity_result {
  std::map<std::pair<int, std::string>, long> decisions;
  run_stats stats;
};

template <Transport T>
parity_result run_on(const process_factory& algo, const net_options& opts,
                     std::size_t max_rounds = 100000) {
  T net(opts);
  net.spawn(algo);
  parity_result out;
  out.stats = net.run(max_rounds);
  out.decisions = net.all_decisions();
  return out;
}

void expect_backends_agree(const process_factory& algo,
                           const net_options& opts) {
  const auto sim = run_on<sim_transport>(algo, opts);
  const auto par = run_on<parallel_transport>(algo, opts);
  EXPECT_EQ(sim.decisions, par.decisions);
  EXPECT_EQ(sim.stats.messages_total, par.stats.messages_total);
  EXPECT_EQ(sim.stats.messages_dropped, par.stats.messages_dropped);
  EXPECT_EQ(sim.stats.messages_duplicated, par.stats.messages_duplicated);
  EXPECT_EQ(sim.stats.messages_by_tag, par.stats.messages_by_tag);
  EXPECT_EQ(sim.stats.rounds, par.stats.rounds);
  EXPECT_EQ(sim.stats.local_steps, par.stats.local_steps);
  EXPECT_EQ(sim.stats.local_steps_per_node, par.stats.local_steps_per_node);
  EXPECT_EQ(sim.stats.messages_sent_per_node,
            par.stats.messages_sent_per_node);
  EXPECT_EQ(sim.stats.messages_received_per_node,
            par.stats.messages_received_per_node);
}

TEST(BackendParity, EchoWaveAcrossTopologies) {
  for (const topology topo :
       {topology::ring, topology::complete, topology::grid}) {
    SCOPED_TRACE(to_string(topo));
    expect_backends_agree(echo_wave(0),
                          {.nodes = 16, .topo = topo, .seed = 5});
  }
}

TEST(BackendParity, BfsSpanningTreeAcrossTopologies) {
  for (const topology topo :
       {topology::ring, topology::complete, topology::grid}) {
    SCOPED_TRACE(to_string(topo));
    expect_backends_agree(bfs_spanning_tree(0),
                          {.nodes = 16, .topo = topo, .seed = 23});
  }
}

TEST(BackendParity, AggregateSumAcrossTopologies) {
  for (const topology topo :
       {topology::ring, topology::complete, topology::grid}) {
    SCOPED_TRACE(to_string(topo));
    expect_backends_agree(aggregate_sum(0),
                          {.nodes = 9, .topo = topo, .seed = 77});
  }
}

TEST(BackendParity, LeaderElectionOnParallelBackend) {
  const auto out = run_ring_election<parallel_transport>(
      lcr_leader_election(), {.nodes = 32, .seed = 13});
  EXPECT_EQ(out.leaders, 1u);
  EXPECT_EQ(out.leader_uid, 32);
}

TEST(BackendParity, SixtyFourNodeEchoWaveOnCompleteTopology) {
  // The acceptance bar: 64 nodes, complete topology, >= 2 workers, and
  // the parallel run's decisions are byte-for-byte the simulator's.
  const net_options opts{.nodes = 64, .topo = topology::complete,
                         .seed = 42};
  parallel_transport par(opts);
  ASSERT_GE(par.workers(), 2u);
  par.spawn(echo_wave(0));
  const auto par_stats = par.run();

  sim_transport sim(opts);
  sim.spawn(echo_wave(0));
  const auto sim_stats = sim.run();

  EXPECT_EQ(sim.all_decisions(), par.all_decisions());
  EXPECT_EQ(sim_stats.messages_total, par_stats.messages_total);
  EXPECT_EQ(sim_stats.messages_total, 2 * sim.edge_count());
  EXPECT_EQ(sim_stats.rounds, par_stats.rounds);
  EXPECT_EQ(par.deciders("done"), std::vector<int>{0});
}

TEST(BackendParity, CrashAndCorruptFaultsAgree) {
  // The node-level fault surface composes identically on both backends:
  // crash a star leaf, corrupt another, and compare everything.
  const net_options opts{.nodes = 12, .topo = topology::star, .seed = 3};
  const auto corrupting = [](message& m) {
    if (!m.payload.empty()) m.payload[0] += 1000;
  };
  auto drive = [&](auto& net) {
    net.crash(5);
    net.corrupt(7, corrupting);
    net.spawn(flooding_broadcast(0));
    return net.run();
  };
  sim_transport sim(opts);
  const auto ss = drive(sim);
  parallel_transport par(opts);
  const auto ps = drive(par);
  EXPECT_EQ(sim.all_decisions(), par.all_decisions());
  EXPECT_EQ(ss.messages_total, ps.messages_total);
  EXPECT_EQ(ss.local_steps_per_node, ps.local_steps_per_node);
  EXPECT_FALSE(sim.decision(5, "got").has_value());
}

// ---------------------------------------------------------------------------
// message faults: drop / duplicate / delay
// ---------------------------------------------------------------------------

TEST(MessageFaults, DropLossesAreCountedAndBounded) {
  sim_transport net({.nodes = 16, .topo = topology::complete, .seed = 11,
                     .faults = {.drop = 0.25}});
  net.spawn(flooding_broadcast(0));
  const auto stats = net.run();
  EXPECT_GT(stats.messages_dropped, 0u);
  EXPECT_LT(stats.messages_dropped, stats.messages_total);
  // Dropped messages are sent-but-not-received.
  std::size_t received = 0;
  for (int v = 0; v < 16; ++v) received += stats.messages_received_by(v);
  EXPECT_EQ(received + stats.messages_dropped, stats.messages_total);
}

TEST(MessageFaults, DuplicatesAreCountedAndDeliveredTwice) {
  sim_transport net({.nodes = 8, .seed = 17,
                     .faults = {.duplicate = 0.5}});
  net.spawn(echo_wave(0));
  const auto stats = net.run();
  EXPECT_GT(stats.messages_duplicated, 0u);
  std::size_t received = 0;
  for (int v = 0; v < 8; ++v) received += stats.messages_received_by(v);
  // Every duplicate is one extra delivery on top of the originals.
  EXPECT_EQ(received, stats.messages_total + stats.messages_duplicated);
  // The echo wave is idempotent under duplication: root still terminates.
  EXPECT_EQ(net.deciders("done"), std::vector<int>{0});
}

TEST(MessageFaults, DelayPreservesCorrectnessOfIdempotentWaves) {
  sim_transport net({.nodes = 16, .topo = topology::grid, .seed = 29,
                     .faults = {.max_delay = 3}});
  net.spawn(echo_wave(0));
  const auto stats = net.run();
  EXPECT_EQ(net.deciders("done"), std::vector<int>{0});
  EXPECT_EQ(net.deciders("parent").size(), 15u);
  EXPECT_EQ(stats.messages_dropped, 0u);
  // Delays stretch the run beyond the fault-free diameter-bound rounds.
  sim_transport clean({.nodes = 16, .topo = topology::grid, .seed = 29});
  clean.spawn(echo_wave(0));
  EXPECT_GE(stats.rounds, clean.run().rounds);
}

TEST(MessageFaults, FaultPlanIsIdenticalAcrossBackends) {
  // The fault decisions are drawn from a dedicated rng stream in canonical
  // routing order, so drop/duplicate/delay runs agree across backends too.
  for (const std::uint32_t seed : {1u, 2u, 3u}) {
    SCOPED_TRACE(seed);
    expect_backends_agree(
        flooding_broadcast(0),
        {.nodes = 16, .topo = topology::complete, .seed = seed,
         .faults = {.drop = 0.15, .duplicate = 0.10, .max_delay = 2}});
  }
}

TEST(MessageFaults, AsynchronousRunsSupportMessageFaults) {
  sim_transport net({.nodes = 16, .topo = topology::complete,
                     .mode = timing::asynchronous, .seed = 19,
                     .faults = {.drop = 0.2, .duplicate = 0.1}});
  net.spawn(flooding_broadcast(0));
  const auto stats = net.run();
  EXPECT_GT(stats.messages_dropped, 0u);
  EXPECT_GT(stats.messages_duplicated, 0u);
  std::size_t received = 0;
  for (int v = 0; v < 16; ++v) received += stats.messages_received_by(v);
  EXPECT_EQ(received + stats.messages_dropped,
            stats.messages_total + stats.messages_duplicated);
}

TEST(MessageFaults, FaultFreeRunsMatchTheLegacySeedStreams) {
  // faults = {} must leave the rng streams untouched: the default-seeded
  // election still elects uid n exactly as the pre-fault engine did.
  const auto out =
      run_ring_election(lcr_leader_election(), {.nodes = 8});
  EXPECT_EQ(out.leaders, 1u);
  EXPECT_EQ(out.leader_uid, 8);
  EXPECT_EQ(out.stats.messages_dropped, 0u);
  EXPECT_EQ(out.stats.messages_duplicated, 0u);
}

}  // namespace
}  // namespace cgp::distributed
