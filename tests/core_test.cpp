// Unit and property tests for src/core: the term language, complexity
// algebra, concept registry, algebraic concept declarations, and archetypes.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "core/algebraic.hpp"
#include "core/archetypes.hpp"
#include "core/complexity.hpp"
#include "core/graph_concepts.hpp"
#include "core/registry.hpp"
#include "core/term.hpp"

namespace cgp::core {
namespace {

using T = term;

// ---------------------------------------------------------------------------
// term
// ---------------------------------------------------------------------------

TEST(Term, ToStringInfixAndPrefix) {
  const term t = T::app("+", {T::var("x"), T::cst("0")});
  EXPECT_EQ(t.to_string(), "(x + 0)");
  const term c = T::app("concat", {T::var("s"), T::cst("\"\"")});
  EXPECT_EQ(c.to_string(), "concat(s, \"\")");
}

TEST(Term, StructuralEquality) {
  const term a = T::app("op", {T::var("x"), T::cst("e")});
  const term b = T::app("op", {T::var("x"), T::cst("e")});
  const term c = T::app("op", {T::cst("e"), T::var("x")});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Term, SubstituteReplacesVariables) {
  const term pat = T::app("op", {T::var("x"), T::var("x")});
  const term arg = T::app("f", {T::cst("a")});
  const term out = pat.substitute({{"x", arg}});
  EXPECT_EQ(out, T::app("op", {arg, arg}));
}

TEST(Term, SubstituteLeavesConstants) {
  const term t = T::app("op", {T::var("x"), T::cst("x")});
  const term out = t.substitute({{"x", T::cst("1")}});
  EXPECT_EQ(out, T::app("op", {T::cst("1"), T::cst("x")}));
}

TEST(Term, RenameSymbolsMapsFunctionsAndConstants) {
  const term t = T::app("op", {T::var("x"), T::cst("e")});
  const term out = t.rename_symbols({{"op", "+"}, {"e", "0"}});
  EXPECT_EQ(out, T::app("+", {T::var("x"), T::cst("0")}));
}

TEST(Term, RenameDoesNotTouchVariables) {
  const term t = T::app("f", {T::var("op")});
  const term out = t.rename_symbols({{"op", "+"}});
  EXPECT_EQ(out.args()[0], T::var("op"));
}

TEST(Term, MatchBindsConsistently) {
  const term pat = T::app("+", {T::var("x"), T::var("x")});
  const term good = T::app("+", {T::cst("a"), T::cst("a")});
  const term bad = T::app("+", {T::cst("a"), T::cst("b")});
  ASSERT_TRUE(good.match(pat).has_value());
  EXPECT_EQ(good.match(pat)->at("x"), T::cst("a"));
  EXPECT_FALSE(bad.match(pat).has_value());
}

TEST(Term, MatchRespectsArityAndSymbol) {
  const term pat = T::app("f", {T::var("x")});
  EXPECT_FALSE(T::app("g", {T::cst("a")}).match(pat).has_value());
  EXPECT_FALSE(T::app("f", {T::cst("a"), T::cst("b")}).match(pat).has_value());
}

TEST(Term, VariablesInOrderOfFirstOccurrence) {
  const term t = T::app("f", {T::var("y"), T::app("g", {T::var("x"),
                                                        T::var("y")})});
  EXPECT_EQ(t.variables(), (std::vector<std::string>{"y", "x"}));
}

TEST(Term, SizeCountsNodes) {
  EXPECT_EQ(T::var("x").size(), 1u);
  EXPECT_EQ(T::app("op", {T::var("x"), T::cst("e")}).size(), 3u);
}

TEST(Axiom, ToStringShowsEquation) {
  const axiom a{"right_identity",
                {"x"},
                T::app("+", {T::var("x"), T::cst("0")}),
                T::var("x"),
                ""};
  EXPECT_EQ(a.to_string(), "(x + 0) = x");
}

// ---------------------------------------------------------------------------
// complexity algebra
// ---------------------------------------------------------------------------

TEST(Complexity, ToString) {
  EXPECT_EQ(big_o::one().to_string(), "O(1)");
  EXPECT_EQ(big_o::n().to_string(), "O(n)");
  EXPECT_EQ((big_o::n() * big_o::log_n()).to_string(), "O(n log(n))");
  EXPECT_EQ(big_o::power("n", 2).to_string(), "O(n^2)");
}

TEST(Complexity, SumKeepsOnlyDominatingTerms) {
  const big_o s = big_o::n() + big_o::one() + big_o::log_n();
  EXPECT_EQ(s.to_string(), "O(n)");
}

TEST(Complexity, SumKeepsIncomparableVariables) {
  const big_o s = big_o::n("n") + big_o::n("m");
  EXPECT_TRUE(s.to_string() == "O(n + m)" || s.to_string() == "O(m + n)");
}

TEST(Complexity, ProductAddsExponents) {
  const big_o p = big_o::n() * big_o::n();
  EXPECT_EQ(p.to_string(), "O(n^2)");
  EXPECT_TRUE(p.dominates(big_o::n() * big_o::log_n()));
}

TEST(Complexity, DominancePartialOrder) {
  const big_o nlogn = big_o::n() * big_o::log_n();
  const big_o n2 = big_o::power("n", 2);
  EXPECT_TRUE(n2.dominates(nlogn));
  EXPECT_FALSE(nlogn.dominates(n2));
  EXPECT_TRUE(nlogn.strictly_below(n2));
  EXPECT_TRUE(big_o::log_n().strictly_below(big_o::n()));
  // Incomparable across variables.
  EXPECT_FALSE(big_o::n("n").dominates(big_o::n("m")));
  EXPECT_FALSE(big_o::n("m").dominates(big_o::n("n")));
}

TEST(Complexity, NLogNDominatesN) {
  EXPECT_TRUE((big_o::n() * big_o::log_n()).dominates(big_o::n()));
  EXPECT_FALSE(big_o::n().dominates(big_o::n() * big_o::log_n()));
}

TEST(Complexity, EvalMatchesClosedForm) {
  const big_o c = big_o::constant(3.0) * big_o::n() * big_o::log_n();
  const double v = c.eval({{"n", 1024.0}});
  EXPECT_NEAR(v, 3.0 * 1024.0 * std::log(1024.0), 1e-9);
}

TEST(Complexity, ThetaEqualKeepsLargerConstant) {
  const big_o a = big_o::constant(2.0) * big_o::n();
  const big_o b = big_o::constant(5.0) * big_o::n();
  const big_o s = a + b;
  EXPECT_EQ(s.terms().size(), 1u);
  EXPECT_DOUBLE_EQ(s.terms()[0].coefficient, 5.0);
}

// Property sweep: dominance is reflexive and transitive over a pool.
class ComplexityLattice : public ::testing::TestWithParam<int> {};

TEST_P(ComplexityLattice, DominanceIsPreorder) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> pd(0, 3), ld(0, 2);
  std::vector<big_o> pool;
  for (int i = 0; i < 12; ++i)
    pool.push_back(big_o::power("n", pd(rng), ld(rng)) *
                   big_o::power("m", pd(rng), 0));
  for (const big_o& a : pool) {
    EXPECT_TRUE(a.dominates(a));
    for (const big_o& b : pool)
      for (const big_o& c : pool)
        if (a.dominates(b) && b.dominates(c)) EXPECT_TRUE(a.dominates(c));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComplexityLattice,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------------

TEST(Registry, BuiltinHierarchy) {
  const auto& r = concept_registry::global();
  EXPECT_TRUE(r.contains("Monoid"));
  EXPECT_TRUE(r.refines("Monoid", "Semigroup"));
  EXPECT_TRUE(r.refines("AbelianGroup", "Semigroup"));
  EXPECT_TRUE(r.refines("Field", "Ring"));
  EXPECT_TRUE(r.refines("RandomAccessIterator", "InputIterator"));
  EXPECT_FALSE(r.refines("Semigroup", "Monoid"));
  EXPECT_FALSE(r.refines("Monoid", "StrictWeakOrder"));
}

TEST(Registry, RefinesIsReflexiveForKnownConcepts) {
  const auto& r = concept_registry::global();
  EXPECT_TRUE(r.refines("Monoid", "Monoid"));
  EXPECT_FALSE(r.refines("NoSuchConcept", "NoSuchConcept"));
}

TEST(Registry, DefiningWithUnknownBaseThrows) {
  concept_registry r;
  EXPECT_THROW(r.define({.name = "X", .refines = {"Missing"}}),
               std::invalid_argument);
}

TEST(Registry, AncestorsAndDescendants) {
  const auto& r = concept_registry::global();
  const auto anc = r.ancestors("AbelianGroup");
  EXPECT_TRUE(std::count(anc.begin(), anc.end(), "Group") == 1);
  EXPECT_TRUE(std::count(anc.begin(), anc.end(), "Monoid") == 1);
  EXPECT_TRUE(std::count(anc.begin(), anc.end(), "Magma") == 1);
  const auto desc = r.descendants("Monoid");
  EXPECT_TRUE(std::count(desc.begin(), desc.end(), "Group") == 1);
  EXPECT_TRUE(std::count(desc.begin(), desc.end(), "Field") == 1);
}

TEST(Registry, AxiomInheritance) {
  const auto& r = concept_registry::global();
  const auto axioms = r.all_axioms("Group");
  const auto has = [&](const std::string& n) {
    return std::any_of(axioms.begin(), axioms.end(),
                       [&](const axiom& a) { return a.name == n; });
  };
  EXPECT_TRUE(has("right_inverse"));
  EXPECT_TRUE(has("right_identity"));   // inherited from Monoid
  EXPECT_TRUE(has("associativity"));    // inherited from Semigroup
  EXPECT_FALSE(has("commutativity"));   // belongs to CommutativeMonoid
}

TEST(Registry, MeetOfSiblingConcepts) {
  const auto& r = concept_registry::global();
  // Group and CommutativeMonoid meet at Monoid.
  const auto m = r.meet("Group", "CommutativeMonoid");
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], "Monoid");
}

TEST(Registry, ModelsDirectAndViaRefinement) {
  const auto& r = concept_registry::global();
  EXPECT_TRUE(r.models("AbelianGroup", {"int", "+"}));
  EXPECT_TRUE(r.models("Monoid", {"int", "+"}));      // via refinement
  EXPECT_TRUE(r.models("Semigroup", {"int", "+"}));   // via refinement
  EXPECT_FALSE(r.models("Group", {"int", "*"}));      // ints lack inverses
  EXPECT_TRUE(r.models("Monoid", {"string", "concat"}));
  EXPECT_FALSE(r.models("CommutativeMonoid", {"string", "concat"}));
}

TEST(Registry, FindModelReturnsSymbolBinding) {
  const auto& r = concept_registry::global();
  const auto m = r.find_model("Monoid", {"int", "+"});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->symbol_binding.at("e"), "0");
  EXPECT_EQ(m->symbol_binding.at("op"), "+");
}

TEST(Registry, ConceptsOfType) {
  const auto& r = concept_registry::global();
  const auto cs = r.concepts_of({"unsigned", "^"});
  EXPECT_TRUE(std::count(cs.begin(), cs.end(), "Group") == 1);
  EXPECT_TRUE(std::count(cs.begin(), cs.end(), "Monoid") == 1);
}

TEST(Registry, DescribeRendersRequirementTable) {
  const auto& r = concept_registry::global();
  const std::string d = r.describe("IncidenceGraph");
  EXPECT_NE(d.find("out_edges(v,g)"), std::string::npos);
  EXPECT_NE(d.find("edge_type"), std::string::npos);
  const std::string m = r.describe("Monoid");
  EXPECT_NE(m.find("right_identity"), std::string::npos);
  EXPECT_NE(m.find("op(x, e) = x"), std::string::npos);
}

TEST(Registry, DeclareModelUnknownConceptThrows) {
  concept_registry r;
  EXPECT_THROW(r.declare_model({"Nope", {"int"}, {}}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// algebraic concept declarations (compile-time checks)
// ---------------------------------------------------------------------------

static_assert(Monoid<int, std::plus<>>);
static_assert(AbelianGroup<int, std::plus<>>);
static_assert(CommutativeMonoid<int, std::multiplies<>>);
static_assert(!Group<int, std::multiplies<>>);
static_assert(Field<double>);
static_assert(Field<std::complex<float>>);
static_assert(!Field<int>);
static_assert(Monoid<std::string, std::plus<>>);
static_assert(!CommutativeMonoid<std::string, std::plus<>>);
static_assert(Monoid<bool, std::logical_and<>>);
static_assert(AbelianGroup<unsigned, std::bit_xor<>>);
static_assert(Monoid<unsigned, std::bit_and<>>);
static_assert(!Monoid<int, std::minus<>>);  // subtraction not associative
static_assert(StrictWeakOrder<std::less<>, int>);
static_assert(!StrictWeakOrder<std::less_equal<>, int>);

TEST(Algebraic, IdentityWitnesses) {
  EXPECT_EQ((identity_element<int, std::plus<>>()), 0);
  EXPECT_EQ((identity_element<int, std::multiplies<>>()), 1);
  EXPECT_EQ((identity_element<bool, std::logical_and<>>()), true);
  EXPECT_EQ((identity_element<unsigned, std::bit_and<>>()), ~0u);
  EXPECT_EQ((identity_element<std::string, std::plus<>>()), "");
}

TEST(Algebraic, InverseWitnesses) {
  EXPECT_EQ((inverse_element<int, std::plus<>>(5)), -5);
  EXPECT_DOUBLE_EQ((inverse_element<double, std::multiplies<>>(4.0)), 0.25);
  EXPECT_EQ((inverse_element<unsigned, std::bit_xor<>>(0xABu)), 0xABu);
}

TEST(Algebraic, EquivalentUnderStrictWeakOrder) {
  EXPECT_TRUE(equivalent_under(3, 3));
  EXPECT_FALSE(equivalent_under(3, 4));
  // Case-insensitive comparator: distinct values can be equivalent.
  struct ci_less {
    bool operator()(char a, char b) const {
      return std::tolower(a) < std::tolower(b);
    }
  };
  EXPECT_TRUE(equivalent_under('a', 'A', ci_less{}));
  EXPECT_FALSE(equivalent_under('a', 'b', ci_less{}));
}

// Property sweep: declared monoid models actually satisfy the axioms on
// sampled values (semantic declarations are promises; we audit them).
template <class T, class Op>
void check_monoid_axioms(const std::vector<T>& samples) {
  const Op op{};
  const T e = monoid_traits<T, Op>::identity();
  for (const T& a : samples) {
    EXPECT_EQ(op(a, e), a);
    EXPECT_EQ(op(e, a), a);
    for (const T& b : samples)
      for (const T& c : samples)
        EXPECT_EQ(op(op(a, b), c), op(a, op(b, c)));
  }
}

TEST(Algebraic, MonoidAxiomsHoldForDeclaredModels) {
  check_monoid_axioms<int, std::plus<>>({-7, -1, 0, 1, 2, 3, 11});
  check_monoid_axioms<int, std::multiplies<>>({-3, -1, 0, 1, 2, 5});
  check_monoid_axioms<unsigned, std::bit_and<>>({0u, 1u, 0xFFu, 0xA5A5u});
  check_monoid_axioms<unsigned, std::bit_xor<>>({0u, 1u, 0xFFu, 0xA5A5u});
  check_monoid_axioms<bool, std::logical_and<>>({false, true});
  check_monoid_axioms<std::string, std::plus<>>({"", "a", "bc"});
}

TEST(Algebraic, GroupInverseAxiomHolds) {
  for (int a : {-9, -1, 0, 1, 5, 42}) {
    EXPECT_EQ(a + (group_traits<int, std::plus<>>::inverse(a)), 0);
  }
  for (unsigned a : {0u, 1u, 0xDEADu}) {
    EXPECT_EQ(a ^ (group_traits<unsigned, std::bit_xor<>>::inverse(a)), 0u);
  }
}

// ---------------------------------------------------------------------------
// archetypes
// ---------------------------------------------------------------------------

static_assert(std::forward_iterator<forward_iterator_archetype<int>>);
static_assert(std::input_iterator<single_pass_sequence<int>::iterator>);

TEST(Archetypes, SinglePassSequenceAllowsOneTraversal) {
  single_pass_sequence<int> seq({1, 2, 3});
  int sum = 0;
  for (auto it = seq.begin(); it != seq.end(); ++it) sum += *it;
  EXPECT_EQ(sum, 6);
}

TEST(Archetypes, SecondTraversalThrows) {
  single_pass_sequence<int> seq({1, 2, 3});
  for (auto it = seq.begin(); it != seq.end(); ++it) (void)*it;
  EXPECT_THROW((void)seq.begin(), semantic_archetype_violation);
}

TEST(Archetypes, StaleIteratorDereferenceThrows) {
  // max_element-style usage: remember an iterator, advance another copy,
  // then dereference the remembered one.  Input iterators forbid this.
  single_pass_sequence<int> seq({5, 1, 2});
  auto best = seq.begin();
  auto it = best;
  ++it;  // the shared cursor moves past `best`
  EXPECT_THROW((void)*best, semantic_archetype_violation);
}

TEST(Archetypes, PastTheEndDereferenceThrows) {
  single_pass_sequence<int> seq({});
  EXPECT_THROW((void)*seq.begin(), semantic_archetype_violation);
}

TEST(Archetypes, CheckedStrictWeakOrderCountsAndPasses) {
  checked_strict_weak_order<int, std::less<>> cmp;
  EXPECT_TRUE(cmp(1, 2));
  EXPECT_FALSE(cmp(2, 1));
  EXPECT_FALSE(cmp(2, 2));
  EXPECT_EQ(cmp.calls(), 3u);
}

TEST(Archetypes, CheckedStrictWeakOrderRejectsAsymmetryViolation) {
  // `!=` is not a strict weak order: a != b and b != a both hold.
  struct bogus {
    bool operator()(int a, int b) const { return a != b; }
  };
  checked_strict_weak_order<int, bogus> cmp;
  EXPECT_THROW((void)cmp(1, 2), semantic_archetype_violation);
}

}  // namespace
}  // namespace cgp::core
