// Tests for STLlint: the MiniCpp front end and the concept-level symbolic
// executor (Section 3.1, Fig. 4).
#include <gtest/gtest.h>

#include "stllint/lexer.hpp"
#include "stllint/parser.hpp"
#include "stllint/stllint.hpp"

namespace cgp::stllint {
namespace {

bool has_diag(const lint_result& r, severity sev, std::string_view needle,
              int line = 0) {
  for (const diagnostic& d : r.diags) {
    if (d.sev != sev) continue;
    if (d.message.find(needle) == std::string::npos) continue;
    if (line != 0 && d.line != line) continue;
    return true;
  }
  return false;
}

int count_diags(const lint_result& r, severity sev, std::string_view needle) {
  int n = 0;
  for (const diagnostic& d : r.diags)
    if (d.sev == sev && d.message.find(needle) != std::string::npos) ++n;
  return n;
}

// ---------------------------------------------------------------------------
// lexer / parser
// ---------------------------------------------------------------------------

TEST(Lexer, TokenizesIteratorDeclaration) {
  diagnostics diags;
  const auto toks =
      tokenize("vector<int>::iterator it = v.begin();", diags);
  EXPECT_TRUE(diags.empty());
  ASSERT_GE(toks.size(), 12u);
  EXPECT_TRUE(toks[0].is(token_kind::keyword, "vector"));
  EXPECT_TRUE(toks[4].is(token_kind::punct, "::"));
  EXPECT_TRUE(toks[5].is(token_kind::keyword, "iterator"));
}

TEST(Lexer, TracksLineNumbers) {
  diagnostics diags;
  const auto toks = tokenize("int a;\nint b;\n  int c;", diags);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[3].line, 2);
  EXPECT_EQ(toks[6].line, 3);
  EXPECT_EQ(toks[6].column, 3);
}

TEST(Lexer, SkipsCommentsAndReportsBadChars) {
  diagnostics diags;
  const auto toks = tokenize("int a; // c++ comment\n/* block */ int b; @",
                             diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("unexpected character"), std::string::npos);
  int idents = 0;
  for (const auto& t : toks)
    if (t.is(token_kind::identifier)) ++idents;
  EXPECT_EQ(idents, 2);
}

TEST(Parser, ParsesFunctionWithControlFlow) {
  diagnostics diags;
  const auto toks = tokenize(R"(
    int f(vector<int>& v, int n) {
      int total = 0;
      for (int i = 0; i < n; ++i) total = total + i;
      while (!v.empty()) { v.pop_back(); }
      if (total > 10) return total; else return 0;
    }
  )",
                             diags);
  const ast_program p = parse(toks, diags);
  EXPECT_TRUE(diags.empty()) << (diags.empty() ? "" : diags[0].message);
  ASSERT_EQ(p.functions.size(), 1u);
  EXPECT_EQ(p.functions[0].name, "f");
  ASSERT_EQ(p.functions[0].params.size(), 2u);
  EXPECT_TRUE(p.functions[0].params[0].by_ref);
  EXPECT_EQ(p.functions[0].params[0].type.to_string(), "vector<int>");
}

TEST(Parser, RecoversFromBadStatement) {
  diagnostics diags;
  const auto toks = tokenize(R"(
    void f() {
      int x = ;
      int y = 2;
    }
  )",
                             diags);
  const ast_program p = parse(toks, diags);
  EXPECT_FALSE(diags.empty());
  ASSERT_EQ(p.functions.size(), 1u);  // function still produced
}

TEST(Parser, UserTypesAndMemberCalls) {
  diagnostics diags;
  const auto toks = tokenize(R"(
    void f(vector<student_info>& s) {
      student_info rec = s.front();
      s.push_back(rec);
    }
  )",
                             diags);
  const ast_program p = parse(toks, diags);
  EXPECT_TRUE(diags.empty());
  ASSERT_EQ(p.functions.size(), 1u);
  EXPECT_EQ(p.functions[0].params[0].type.element->to_string(),
            "student_info");
}

// ---------------------------------------------------------------------------
// Fig. 4: the iterator-invalidation bug
// ---------------------------------------------------------------------------

constexpr const char* kFig4Program = R"(
vector<student_info> extract_fails(vector<student_info>& students) {
  vector<student_info> fail;
  vector<student_info>::iterator iter = students.begin();
  while (iter != students.end()) {
    if (fgrade(*iter)) {
      fail.push_back(*iter);
      students.erase(iter);
    } else
      ++iter;
  }
  return fail;
}
)";

TEST(Fig4, DetectsSingularIteratorDereference) {
  const lint_result r = lint_source(kFig4Program);
  // The paper's exact warning, anchored at the `if (fgrade(*iter))` line.
  EXPECT_TRUE(has_diag(r, severity::warning,
                       "attempt to dereference a singular iterator", 6))
      << r.to_string();
  // The echoed source line matches the paper's output.
  bool found_echo = false;
  for (const diagnostic& d : r.diags)
    if (d.line == 6 && d.source_line == "if (fgrade(*iter)) {")
      found_echo = true;
  EXPECT_TRUE(found_echo) << r.to_string();
}

TEST(Fig4, FixedProgramIsClean) {
  // The canonical fix: use erase's return value.
  constexpr const char* fixed = R"(
vector<student_info> extract_fails(vector<student_info>& students) {
  vector<student_info> fail;
  vector<student_info>::iterator iter = students.begin();
  while (iter != students.end()) {
    if (fgrade(*iter)) {
      fail.push_back(*iter);
      iter = students.erase(iter);
    } else
      ++iter;
  }
  return fail;
}
)";
  const lint_result r = lint_source(fixed);
  EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(Fig4, ListVariantIsAlsoBuggy) {
  // list::erase invalidates only the erased iterator — but the loop keeps
  // using exactly that iterator, so the bug remains.
  constexpr const char* listy = R"(
void extract_fails(list<student_info>& students) {
  list<student_info>::iterator iter = students.begin();
  while (iter != students.end()) {
    if (fgrade(*iter)) {
      students.erase(iter);
    } else
      ++iter;
  }
}
)";
  const lint_result r = lint_source(listy);
  EXPECT_TRUE(has_diag(r, severity::warning,
                       "attempt to dereference a singular iterator"))
      << r.to_string();
}

TEST(Fig4, ListEraseOfOtherIteratorKeepsLoopValid) {
  // For list, erasing a *different* iterator must not invalidate the loop
  // iterator (node-based container).
  constexpr const char* ok = R"(
void drop_first(list<int>& l) {
  list<int>::iterator first = l.begin();
  list<int>::iterator it = l.begin();
  ++it;
  l.erase(first);
  while (it != l.end()) {
    use(*it);
    ++it;
  }
}
)";
  const lint_result r = lint_source(ok);
  EXPECT_EQ(count_diags(r, severity::warning, "singular"), 0)
      << r.to_string();
}

TEST(Fig4, VectorEraseOfOtherIteratorInvalidatesEverything) {
  constexpr const char* bad = R"(
void drop_first(vector<int>& v) {
  vector<int>::iterator first = v.begin();
  vector<int>::iterator it = v.begin();
  ++it;
  v.erase(first);
  use(*it);
}
)";
  const lint_result r = lint_source(bad);
  EXPECT_TRUE(has_diag(r, severity::warning,
                       "attempt to dereference a singular iterator", 7))
      << r.to_string();
}

// ---------------------------------------------------------------------------
// Basic invalidation and range rules
// ---------------------------------------------------------------------------

TEST(Invalidation, PushBackInvalidatesVectorIterators) {
  const lint_result r = lint_source(R"(
void f(vector<int>& v) {
  vector<int>::iterator it = v.begin();
  v.push_back(1);
  use(*it);
}
)");
  EXPECT_TRUE(has_diag(r, severity::warning,
                       "attempt to dereference a singular iterator", 5));
}

TEST(Invalidation, PushBackDoesNotInvalidateListIterators) {
  const lint_result r = lint_source(R"(
void f(list<int>& v) {
  list<int>::iterator it = v.begin();
  v.push_back(1);
  use(*it);
}
)");
  EXPECT_EQ(count_diags(r, severity::warning, "singular"), 0)
      << r.to_string();
}

TEST(Invalidation, ClearInvalidatesEverything) {
  const lint_result r = lint_source(R"(
void f(list<int>& v) {
  list<int>::iterator it = v.begin();
  v.clear();
  use(*it);
}
)");
  EXPECT_TRUE(has_diag(r, severity::warning,
                       "attempt to dereference a singular iterator"));
}

TEST(Invalidation, UninitializedIteratorIsSingular) {
  const lint_result r = lint_source(R"(
void f() {
  vector<int>::iterator it;
  use(*it);
}
)");
  EXPECT_TRUE(has_diag(r, severity::warning, "uninitialized"));
}

TEST(Ranges, DereferencingEndIterator) {
  const lint_result r = lint_source(R"(
void f(vector<int>& v) {
  use(*v.end());
}
)");
  EXPECT_TRUE(has_diag(r, severity::warning,
                       "attempt to dereference a past-the-end iterator"));
}

TEST(Ranges, DereferencingBeginOfEmptyContainer) {
  const lint_result r = lint_source(R"(
void f() {
  vector<int> v;
  use(*v.begin());
}
)");
  EXPECT_TRUE(has_diag(r, severity::warning, "past-the-end"));
}

TEST(Ranges, BeginOfNonEmptyKnownContainerIsFine) {
  const lint_result r = lint_source(R"(
void f() {
  vector<int> v;
  v.push_back(1);
  use(*v.begin());
}
)");
  EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(Ranges, EmptinessRefinementThroughBranch) {
  const lint_result r = lint_source(R"(
void f(vector<int>& v) {
  if (!v.empty()) {
    use(*v.begin());
  }
}
)");
  EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(Ranges, MixedRangeAcrossContainers) {
  const lint_result r = lint_source(R"(
void f(vector<int>& a, vector<int>& b) {
  sort(a.begin(), b.end());
}
)");
  EXPECT_TRUE(has_diag(r, severity::warning, "spans different containers"));
}

TEST(Ranges, ComparingIteratorsOfDifferentContainers) {
  const lint_result r = lint_source(R"(
void f(vector<int>& a, vector<int>& b) {
  vector<int>::iterator x = a.begin();
  vector<int>::iterator y = b.begin();
  if (x == y) { use(1); }
}
)");
  EXPECT_TRUE(has_diag(r, severity::warning,
                       "comparison of iterators from different containers"));
}

TEST(Ranges, DecrementAtBegin) {
  const lint_result r = lint_source(R"(
void f(vector<int>& v) {
  vector<int>::iterator it = v.begin();
  --it;
}
)");
  EXPECT_TRUE(has_diag(r, severity::warning,
                       "decrement an iterator already at the beginning"));
}

TEST(Ranges, EraseFromEmptyContainer) {
  const lint_result r = lint_source(R"(
void f() {
  vector<int> v;
  v.erase(v.begin());
}
)");
  EXPECT_TRUE(has_diag(r, severity::warning, "erase from an empty container"));
}

TEST(Ranges, FrontOnEmptyContainer) {
  const lint_result r = lint_source(R"(
void f() {
  vector<int> v;
  use(v.front());
}
)");
  EXPECT_TRUE(has_diag(r, severity::warning, "front() on an empty container"));
}

// ---------------------------------------------------------------------------
// Multipass / iterator-concept requirements (Section 3.1's archetypes)
// ---------------------------------------------------------------------------

TEST(Concepts, MaxElementOnInputStreamViolatesMultipass) {
  const lint_result r = lint_source(R"(
void f(input_stream<int>& s) {
  max_element(s.begin(), s.end());
}
)");
  EXPECT_TRUE(has_diag(r, severity::warning,
                       "'max_element' requires a model of ForwardIterator"));
  EXPECT_TRUE(has_diag(r, severity::warning, "multipass"));
}

TEST(Concepts, FindOnInputStreamIsFine) {
  const lint_result r = lint_source(R"(
void f(input_stream<int>& s) {
  find(s.begin(), s.end(), 42);
}
)");
  EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(Concepts, SecondTraversalOfInputStream) {
  const lint_result r = lint_source(R"(
void f(input_stream<int>& s) {
  find(s.begin(), s.end(), 1);
  find(s.begin(), s.end(), 2);
}
)");
  EXPECT_TRUE(has_diag(r, severity::warning,
                       "second traversal of single-pass sequence"));
}

TEST(Concepts, SortOnListRequiresRandomAccess) {
  const lint_result r = lint_source(R"(
void f(list<double>& l) {
  sort(l.begin(), l.end());
}
)");
  EXPECT_TRUE(has_diag(r, severity::warning,
                       "'sort' requires a model of RandomAccessIterator"));
}

TEST(Concepts, ListMemberSortIsTheRightTool) {
  const lint_result r = lint_source(R"(
void f(list<double>& l) {
  l.sort();
  bool found = binary_search(l.begin(), l.end(), 3.5);
}
)");
  EXPECT_EQ(count_diags(r, severity::warning, "RandomAccessIterator"), 0);
  EXPECT_EQ(count_diags(r, severity::warning, "sorted"), 0) << r.to_string();
}

TEST(Concepts, ReverseOnSetIsFineBidirectional) {
  const lint_result r = lint_source(R"(
void f(set<int>& s) {
  reverse(s.begin(), s.end());
}
)");
  // Bidirectional suffices for reverse.
  EXPECT_EQ(count_diags(r, severity::warning, "requires a model"), 0);
}

// ---------------------------------------------------------------------------
// Sortedness: entry/exit handlers and the optimization advisory (Section 3.2)
// ---------------------------------------------------------------------------

TEST(Sortedness, BinarySearchOnUnsortedContainerWarns) {
  const lint_result r = lint_source(R"(
void f() {
  vector<int> v;
  v.push_back(3);
  v.push_back(1);
  bool found = binary_search(v.begin(), v.end(), 2);
}
)");
  EXPECT_TRUE(has_diag(r, severity::warning,
                       "requires the range [first, last) to be sorted"));
}

TEST(Sortedness, SortEstablishesThePostcondition) {
  const lint_result r = lint_source(R"(
void f() {
  vector<int> v;
  v.push_back(3);
  v.push_back(1);
  sort(v.begin(), v.end());
  bool found = binary_search(v.begin(), v.end(), 2);
}
)");
  EXPECT_EQ(count_diags(r, severity::warning, "to be sorted"), 0)
      << r.to_string();
}

TEST(Sortedness, SetIsAlwaysSorted) {
  const lint_result r = lint_source(R"(
void f(set<int>& s) {
  bool found = binary_search(s.begin(), s.end(), 2);
}
)");
  EXPECT_EQ(count_diags(r, severity::warning, "to be sorted"), 0);
}

TEST(Sortedness, PushBackAfterSortBreaksThePostcondition) {
  const lint_result r = lint_source(R"(
void f() {
  vector<int> v;
  v.push_back(3);
  v.push_back(1);
  sort(v.begin(), v.end());
  v.push_back(0);
  bool found = binary_search(v.begin(), v.end(), 2);
}
)");
  EXPECT_TRUE(has_diag(r, severity::warning,
                       "requires the range [first, last) to be sorted"));
}

TEST(Advisory, SortThenLinearFindSuggestsLowerBound) {
  // The Section 3.2 example, message verbatim.
  const lint_result r = lint_source(R"(
void f(vector<int>& v) {
  sort(v.begin(), v.end());
  vector<int>::iterator i = find(v.begin(), v.end(), 42);
}
)");
  EXPECT_TRUE(has_diag(
      r, severity::advice,
      "the incoming sequence [first, last) is sorted, but will be searched "
      "linearly with this algorithm. Consider replacing this algorithm with "
      "one specialized for sorted sequences (e.g., lower_bound)"))
      << r.to_string();
}

TEST(Advisory, FindOnUnsortedContainerIsSilent) {
  const lint_result r = lint_source(R"(
void f() {
  vector<int> v;
  v.push_back(2);
  v.push_back(1);
  vector<int>::iterator i = find(v.begin(), v.end(), 42);
}
)");
  EXPECT_EQ(count_diags(r, severity::advice, "sorted"), 0) << r.to_string();
}

TEST(Advisory, CanBeDisabled) {
  options opt;
  opt.advisories = false;
  const lint_result r = lint_source(R"(
void f(vector<int>& v) {
  sort(v.begin(), v.end());
  vector<int>::iterator i = find(v.begin(), v.end(), 42);
}
)",
                                    opt);
  EXPECT_EQ(count_diags(r, severity::advice, "sorted"), 0);
}

TEST(Advisory, LowerBoundOnSortedRangeIsTheFix) {
  const lint_result r = lint_source(R"(
void f(vector<int>& v) {
  sort(v.begin(), v.end());
  vector<int>::iterator i = lower_bound(v.begin(), v.end(), 42);
}
)");
  EXPECT_TRUE(r.clean()) << r.to_string();
  EXPECT_EQ(count_diags(r, severity::advice, "sorted"), 0);
}

// ---------------------------------------------------------------------------
// Loops, joins, and healing
// ---------------------------------------------------------------------------

TEST(Loops, StandardIterationIsClean) {
  const lint_result r = lint_source(R"(
int sum(vector<int>& v) {
  int total = 0;
  vector<int>::iterator it = v.begin();
  while (it != v.end()) {
    total = total + deref(*it);
    ++it;
  }
  return total;
}
)");
  EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(Loops, ForLoopOverContainerIsClean) {
  const lint_result r = lint_source(R"(
void f(list<int>& l) {
  for (list<int>::iterator it = l.begin(); it != l.end(); ++it) {
    use(*it);
  }
}
)");
  EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(Loops, SingularWarningReportedExactlyOnce) {
  const lint_result r = lint_source(kFig4Program);
  EXPECT_EQ(count_diags(r, severity::warning,
                        "attempt to dereference a singular iterator"),
            1)
      << r.to_string();
}

TEST(Loops, BreakStateReachesLoopExit) {
  const lint_result r = lint_source(R"(
void f(vector<int>& v) {
  vector<int>::iterator it = v.begin();
  while (it != v.end()) {
    if (found(*it)) { v.erase(it); break; }
    ++it;
  }
  use(*it);
}
)");
  // After the break, `it` was invalidated by erase.
  EXPECT_TRUE(has_diag(r, severity::warning,
                       "attempt to dereference a singular iterator", 8))
      << r.to_string();
}

TEST(Loops, IntBoundedLoopRefinesInterval) {
  const lint_result r = lint_source(R"(
void f() {
  vector<int> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  use(*v.begin());
}
)");
  // After at least one push_back the container may be non-empty; the
  // dereference must not be flagged as definitely past-the-end.
  EXPECT_EQ(count_diags(r, severity::warning, "past-the-end"), 0)
      << r.to_string();
}

TEST(Sema, UndeclaredVariable) {
  const lint_result r = lint_source(R"(
void f() {
  use(nonexistent);
}
)");
  EXPECT_TRUE(has_diag(r, severity::error, "undeclared variable"));
}

TEST(Stats, CountsWork) {
  const lint_result r = lint_source(kFig4Program);
  EXPECT_EQ(r.stats.functions, 1u);
  EXPECT_GT(r.stats.statements, 5u);
  EXPECT_GT(r.stats.expressions, 10u);
  EXPECT_GT(r.stats.loop_passes, 0u);
}

}  // namespace
}  // namespace cgp::stllint
