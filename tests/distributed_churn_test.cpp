// Churn soak: SWIM-style gossip membership (algorithms.hpp) under the
// runtime's randomized crash/recover schedule (`fault_options::churn_*`).
// Nodes crash and recover via seeded per-(node, round) hash draws for the
// first `churn_until` rounds; after that the membership freezes, and the
// soak asserts every surviving node's gossip view converges to the ground
// truth the runtime itself exposes (`net_base::is_down`):
//
//   * every alive node declares every other alive node a member ("member:<j>"
//     == 1) — recovered nodes are re-admitted, not permanently suspected;
//   * no alive node still counts a dead node as a member (any "member:<j>"
//     entry for a down j is 0; a node that died before ever gossiping may
//     legitimately be unknown, so absence is also accepted).
//
// The complete topology keeps the alive subgraph connected under any churn
// schedule, so convergence is a property of the protocol, not of luck in
// graph structure.  A planted never-converging twin
// (DISABLED_SuspectTimeoutLongerThanRunNeverConverges) runs with a suspect
// timeout longer than the whole run, so dead nodes are never evicted; ctest
// registers it WILL_FAIL to prove the soak actually discriminates.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/gtest_support.hpp"
#include "check/property.hpp"
#include "distributed/algorithms.hpp"
#include "distributed/inproc_transport.hpp"
#include "distributed/network.hpp"

namespace check = cgp::check;
namespace dist = cgp::distributed;

CGP_REGISTER_SEED_BANNER();

namespace {

constexpr std::size_t kChurnUntil = 20;
constexpr std::size_t kSuspectTimeout = 10;
// 30 quiet rounds after the churn window: enough for the last rumor of a
// dead node to age out (timeout 10) with a wide deterministic margin.
constexpr std::size_t kTotalRounds = kChurnUntil + 30;

dist::net_options churn_options(std::uint64_t raw) {
  dist::net_options opts;
  opts.nodes = 16 + raw % 17;  // 16..32
  opts.topo = dist::topology::complete;
  opts.mode = dist::timing::synchronous;
  opts.seed = static_cast<std::uint32_t>(raw >> 17);
  opts.faults.churn_crash = 0.08;
  opts.faults.churn_recover = 0.2;
  opts.faults.churn_until = kChurnUntil;
  return opts;
}

/// Runs gossip membership under churn and checks the final membership view
/// of every surviving node against is_down().  `downs_seen` accumulates how
/// many dead nodes the schedule actually produced, so the caller can verify
/// the soak exercised real churn and not only the happy path.  Templated on
/// the Transport backend: the churn schedule is a pure hash of
/// (seed, node, round), so the same options must converge identically on
/// the sequential simulator and the threaded backends.
template <typename Transport = dist::sim_transport>
bool converges_to_ground_truth(const dist::net_options& opts,
                               std::size_t suspect_timeout,
                               std::size_t* downs_seen) {
  Transport net(opts);
  net.spawn(dist::gossip_membership(suspect_timeout));
  net.run(kTotalRounds);
  const int n = static_cast<int>(net.node_count());
  for (int j = 0; j < n; ++j)
    if (net.is_down(j) && downs_seen) ++*downs_seen;
  for (int i = 0; i < n; ++i) {
    if (net.is_down(i)) continue;
    for (int j = 0; j < n; ++j) {
      const auto view = net.decision(i, "member:" + std::to_string(j));
      if (net.is_down(j)) {
        if (view.has_value() && *view != 0) return false;  // dead, kept
      } else {
        if (!view.has_value() || *view != 1) return false;  // alive, evicted
      }
    }
  }
  return true;
}

}  // namespace

TEST(GossipChurnSoak, MembershipConvergesAfterChurnStops) {
  std::size_t downs_seen = 0;
  check::config cfg;
  cfg.cases = 10;  // each case is a full 50-round network run
  const auto res = check::for_all<std::uint64_t>(
      "distributed.gossip.churn_convergence",
      [&downs_seen](std::uint64_t raw) {
        return converges_to_ground_truth(churn_options(raw), kSuspectTimeout,
                                         &downs_seen);
      },
      cfg);
  EXPECT_TRUE(res.ok) << res.message;
  // The schedule must have actually killed somebody across the soak,
  // otherwise the dead-node half of the oracle was never exercised.
  EXPECT_GT(downs_seen, 0u);
}

TEST(GossipChurnSoak, InprocBackendConvergesUnderChurn) {
  // The same soak on the sharded inproc backend (ISSUE 10 satellite: the
  // health/watchdog work leans on inproc-under-churn staying correct).
  // One pinned schedule, run on both the simulator and inproc: both must
  // converge, and the hash-drawn churn schedule must kill the same nodes.
  dist::net_options opts = churn_options(0xc0ffeeULL);
  opts.workers = 3;
  std::size_t downs_sim = 0;
  std::size_t downs_inproc = 0;
  EXPECT_TRUE(converges_to_ground_truth<dist::sim_transport>(
      opts, kSuspectTimeout, &downs_sim));
  EXPECT_TRUE(converges_to_ground_truth<dist::inproc_transport>(
      opts, kSuspectTimeout, &downs_inproc));
  EXPECT_EQ(downs_sim, downs_inproc);
  EXPECT_GT(downs_sim, 0u) << "pinned schedule produced no churn victims";
}

TEST(GossipChurnSoak, RecoveredNodesAreReadmitted) {
  // Deterministic single-schedule variant pinned to one seed with a high
  // recovery rate: most churn victims come back, and every one that does
  // must be back in every survivor's view.
  dist::net_options opts = churn_options(0x5eedf00dULL);
  opts.faults.churn_recover = 0.5;
  std::size_t downs = 0;
  EXPECT_TRUE(converges_to_ground_truth(opts, kSuspectTimeout, &downs));
}

// Planted WILL_FAIL twin (see tests/CMakeLists.txt): with a suspect timeout
// longer than the entire run, gossip NEVER evicts anyone — node 3 is
// explicitly crashed after it has introduced itself, so some survivor still
// counts it as a member at the end and the ground-truth comparison fails.
// ctest inverts the outcome (WILL_FAIL TRUE); if this test ever PASSES, the
// soak's oracle has gone soft.
TEST(GossipChurnSoak, DISABLED_SuspectTimeoutLongerThanRunNeverConverges) {
  dist::net_options opts = churn_options(0x0ddba11ULL);
  opts.faults.churn_crash = 0.0;  // only the planted crash below
  dist::sim_transport net(opts);
  net.spawn(dist::gossip_membership(/*suspect_timeout=*/1000));
  net.crash(3, /*round=*/5);  // after round 1: every node has met node 3
  net.run(kTotalRounds);
  ASSERT_TRUE(net.is_down(3));
  bool some_survivor_evicted_node3 = true;
  for (int i = 0; i < static_cast<int>(net.node_count()); ++i) {
    if (net.is_down(i)) continue;
    const auto view = net.decision(i, "member:3");
    if (view.has_value() && *view != 0) some_survivor_evicted_node3 = false;
  }
  EXPECT_TRUE(some_survivor_evicted_node3)
      << "timeout=1000 should never evict, so this must fail";
}
