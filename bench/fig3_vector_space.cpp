// Fig. 3 reproduction: the Vector Space multi-type concept and the CLACRM
// mixed-precision claim — "multiplications between complex<float> and float
// ... are significantly more efficient than converting the second argument
// to a complex number and performing complex multiplication."
//
// The shape to reproduce: mixed beats promoted by roughly the ratio of real
// multiply-adds (2 vs 6 flops per element), i.e. ~2-3x.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "core/registry.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace {

using cf = std::complex<float>;
using cgp::linalg::matrix;
using cgp::linalg::vec;

vec<cf> random_vec(std::size_t n) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<float> d(-1.0f, 1.0f);
  vec<cf> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = cf(d(rng), d(rng));
  return v;
}

void bm_scale_mixed(benchmark::State& state) {
  const auto v = random_vec(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(mult(v, 1.0001f));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_scale_mixed)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void bm_scale_promoted(benchmark::State& state) {
  const auto v = random_vec(static_cast<std::size_t>(state.range(0)));
  // The associated-scalar-type design forces the scalar to be cf.
  const cf s(1.0001f, 0.0f);
  for (auto _ : state) benchmark::DoNotOptimize(mult(v, s));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_scale_promoted)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

std::pair<matrix<cf>, matrix<float>> random_matrices(std::size_t n) {
  std::mt19937 rng(5);
  std::uniform_real_distribution<float> d(-1.0f, 1.0f);
  matrix<cf> a(n, n);
  matrix<float> b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = cf(d(rng), d(rng));
      b(i, j) = d(rng);
    }
  return {std::move(a), std::move(b)};
}

void bm_clacrm_mixed(benchmark::State& state) {
  const auto [a, b] = random_matrices(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(cgp::linalg::clacrm_mixed(a, b));
}
BENCHMARK(bm_clacrm_mixed)->Arg(64)->Arg(128)->Arg(256);

void bm_clacrm_promoted(benchmark::State& state) {
  const auto [a, b] = random_matrices(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(cgp::linalg::clacrm_promoted(a, b));
}
BENCHMARK(bm_clacrm_promoted)->Arg(64)->Arg(128)->Arg(256);

void bm_axpy_mixed(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<cf> x(n, cf(0.5f, 0.25f)), y(n, cf(0.0f, 0.0f));
  for (auto _ : state) {
    cgp::linalg::axpy(1.0001f, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_axpy_mixed)->Arg(1 << 16);

void bm_axpy_promoted(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<cf> x(n, cf(0.5f, 0.25f)), y(n, cf(0.0f, 0.0f));
  const cf s(1.0001f, 0.0f);
  for (auto _ : state) {
    cgp::linalg::axpy(s, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_axpy_promoted)->Arg(1 << 16);

void report() {
  std::printf("================================================================\n");
  std::printf("Fig. 3: the Vector Space concept constrains TWO types\n");
  std::printf("================================================================\n");
  const auto& reg = cgp::core::concept_registry::global();
  std::printf("%s\n", reg.describe("VectorSpace").c_str());
  static_assert(cgp::core::VectorSpace<vec<cf>, float>);
  static_assert(cgp::core::VectorSpace<vec<cf>, cf>);
  std::printf(
      "static checks: vec<complex<float>> is a vector space over float AND "
      "over complex<float>.\n"
      "An associated-type design would hardwire the scalar to "
      "complex<float>, forcing the\n"
      "promoted kernels below.  Expected shape: mixed beats promoted ~2-3x "
      "(2 vs 6 real\nflops per element), as in LAPACK's CLACRM.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
