// Fig. 6 reproduction: machine-checked derivation that a Strict Weak
// Order's induced relation E is an equivalence relation, plus the
// Section 3.3 performance claims:
//  * proof CHECKING is fast (linear in proof size) — we measure
//    microseconds per theorem;
//  * generic proofs amortize: instantiating for the k-th model costs the
//    same as for the first (flat per-instantiation time).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "proof/theories.hpp"

namespace {

using namespace cgp::proof;

void bm_check_swo_reflexive(benchmark::State& state) {
  const theorem thm = theories::equivalence_reflexive();
  for (auto _ : state) benchmark::DoNotOptimize(thm.check());
}
BENCHMARK(bm_check_swo_reflexive);

void bm_check_swo_equivalence(benchmark::State& state) {
  const theorem thm = theories::equivalence_relation();
  for (auto _ : state) benchmark::DoNotOptimize(thm.check());
}
BENCHMARK(bm_check_swo_equivalence);

void bm_check_group_cancellation(benchmark::State& state) {
  const theorem thm = theories::group_left_cancellation();
  for (auto _ : state) benchmark::DoNotOptimize(thm.check());
}
BENCHMARK(bm_check_group_cancellation);

void bm_check_ring_annihilation(benchmark::State& state) {
  const theorem thm = theories::ring_annihilation();
  for (auto _ : state) benchmark::DoNotOptimize(thm.check());
}
BENCHMARK(bm_check_ring_annihilation);

void bm_instantiate_many_models(benchmark::State& state) {
  // One generic proof text, N signatures: per-model cost must stay flat.
  const theorem thm = theories::equivalence_relation();
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (std::size_t k = 0; k < n; ++k) {
      benchmark::DoNotOptimize(thm.check(
          signature{{{"lt", "lt_" + std::to_string(k)},
                     {"E", "eq_" + std::to_string(k)}}}));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(bm_instantiate_many_models)->Arg(1)->Arg(8)->Arg(64);

void report() {
  std::printf("================================================================\n");
  std::printf("Fig. 6: Strict Weak Order => E is an equivalence relation\n");
  std::printf("================================================================\n");
  std::printf("axioms:\n");
  for (const prop& ax : theories::strict_weak_order_axioms({}))
    std::printf("  %s\n", ax.to_string().c_str());
  std::printf("\ncertified theorems (steps = primitive inferences checked):\n");
  for (const theorem& thm :
       {theories::equivalence_reflexive(), theories::equivalence_symmetric(),
        theories::equivalence_relation(), theories::group_identity_unique(),
        theories::group_left_cancellation(),
        theories::group_inverse_unique(), theories::ring_annihilation()}) {
    std::size_t steps = 0;
    const prop proved = thm.check({}, &steps);
    std::printf("  %-28s %4zu steps   %s\n", thm.name.c_str(), steps,
                proved.to_string().substr(0, 80).c_str());
  }
  std::printf("\ninstantiation like a generic algorithm — same proof, three "
              "orders:\n");
  const theorem generic = theories::equivalence_relation();
  for (const char* lt : {"int_less", "string_lex", "version_precedes"}) {
    std::size_t steps = 0;
    (void)generic.check(signature{{{"lt", lt}}}, &steps);
    std::printf("  lt := %-18s checked in %zu steps\n", lt, steps);
  }
  std::printf("\nbenchmarks: micro-seconds per CHECK (no search), flat "
              "per-instantiation cost:\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
