// Section 3.2 reproduction: STLlint's algorithmic-optimization advisory and
// the payoff of taking it — replacing linear `find` on sorted data with
// `lower_bound` "improves the asymptotic performance" (O(n) -> O(log n)).
// The shape to reproduce: lower_bound wins from tiny sizes and the gap
// widens as n grows.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <numeric>
#include <random>
#include <vector>

#include "sequences/checked.hpp"
#include "stllint/stllint.hpp"

namespace {

std::vector<int> sorted_data(std::size_t n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  for (int& x : v) x *= 2;  // even values: half the probes miss
  return v;
}

void bm_linear_find_on_sorted(benchmark::State& state) {
  const auto v = sorted_data(static_cast<std::size_t>(state.range(0)));
  std::mt19937 rng(9);
  std::uniform_int_distribution<int> probe(0,
                                           static_cast<int>(2 * v.size()));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        cgp::sequences::find(v.begin(), v.end(), probe(rng)));
}
BENCHMARK(bm_linear_find_on_sorted)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(1 << 16)
    ->Arg(1 << 20);

void bm_lower_bound_on_sorted(benchmark::State& state) {
  const auto v = sorted_data(static_cast<std::size_t>(state.range(0)));
  std::mt19937 rng(9);
  std::uniform_int_distribution<int> probe(0,
                                           static_cast<int>(2 * v.size()));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        cgp::sequences::lower_bound(v.begin(), v.end(), probe(rng)));
}
BENCHMARK(bm_lower_bound_on_sorted)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(1 << 16)
    ->Arg(1 << 20);

void bm_checked_binary_search(benchmark::State& state) {
  // The dynamic entry handler verifies sortedness in O(n): the price of
  // runtime verification vs STLlint's static assurance.
  const auto v = sorted_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        cgp::sequences::checked::binary_search(v.begin(), v.end(), 1234));
}
BENCHMARK(bm_checked_binary_search)->Arg(4096)->Arg(1 << 16);

void bm_unchecked_binary_search(benchmark::State& state) {
  const auto v = sorted_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        cgp::sequences::binary_search(v.begin(), v.end(), 1234));
}
BENCHMARK(bm_unchecked_binary_search)->Arg(4096)->Arg(1 << 16);

void report() {
  std::printf("================================================================\n");
  std::printf("Section 3.2: sorted-range advisory and its payoff\n");
  std::printf("================================================================\n");
  const char* program = R"(
void f(vector<int>& v) {
  sort(v.begin(), v.end());
  vector<int>::iterator i = find(v.begin(), v.end(), 42);
}
)";
  std::printf("input:%s\nSTLlint says:\n", program);
  for (const auto& d : cgp::stllint::lint_source(program).diags)
    std::printf("%s\n", d.to_string().c_str());
  std::printf("\nafter applying the advisory (find -> lower_bound) the "
              "program is clean: %s\n",
              cgp::stllint::lint_source(
                  "void f(vector<int>& v) {\n"
                  "  sort(v.begin(), v.end());\n"
                  "  vector<int>::iterator i = lower_bound(v.begin(), "
                  "v.end(), 42);\n"
                  "}\n")
                      .clean()
                  ? "yes"
                  : "NO")
      ;
  std::printf("\nbenchmarks quantify the advisory: O(n) find vs O(log n) "
              "lower_bound on sorted data,\nplus the cost of verifying the "
              "precondition dynamically instead of statically:\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
