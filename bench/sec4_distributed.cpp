// Section 4 reproduction: the distributed taxonomy's measured performance
// data.  Shapes to reproduce:
//  * LCR Theta(n^2) vs HS Theta(n log n) messages on adversarial rings,
//    with the crossover visible in the table and exploited by the
//    taxonomy's select();
//  * echo wave = exactly 2|E| messages on every topology;
//  * local computation (the dimension the paper says is "rarely accounted
//    for") reported next to messages and time.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "distributed/algorithms.hpp"
#include "distributed/parallel_transport.hpp"
#include "taxonomy/taxonomy.hpp"

namespace {

using namespace cgp::distributed;

election_outcome run_worst_case(const process_factory& algo, std::size_t n) {
  sim_transport net({.nodes = n});
  std::vector<long> uids(n);
  for (std::size_t i = 0; i < n; ++i) uids[i] = static_cast<long>(n - i);
  net.set_uids(std::move(uids));
  net.spawn(algo);
  election_outcome out;
  out.stats = net.run();
  out.leaders = net.deciders("leader").size();
  return out;
}

void bm_lcr_sync(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_ring_election(lcr_leader_election(), {.nodes = n}));
  }
}
BENCHMARK(bm_lcr_sync)->Arg(64)->Arg(256)->Arg(1024);

void bm_hs_sync(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_ring_election(hs_leader_election(), {.nodes = n}));
  }
}
BENCHMARK(bm_hs_sync)->Arg(64)->Arg(256)->Arg(1024);

void bm_echo_wave_grid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim_transport net({.nodes = n, .topo = topology::grid});
    net.spawn(echo_wave(0));
    benchmark::DoNotOptimize(net.run());
  }
}
BENCHMARK(bm_echo_wave_grid)->Arg(256)->Arg(1024);

void bm_simulator_async_throughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::size_t messages = 0;
  for (auto _ : state) {
    const auto out =
        run_ring_election(lcr_leader_election(),
                          {.nodes = n, .mode = timing::asynchronous});
    messages = out.stats.messages_total;
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(messages));
}
BENCHMARK(bm_simulator_async_throughput)->Arg(256);

void bm_echo_wave_parallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    parallel_transport net({.nodes = n, .topo = topology::grid});
    net.spawn(echo_wave(0));
    benchmark::DoNotOptimize(net.run());
  }
}
BENCHMARK(bm_echo_wave_parallel)->Arg(256)->Arg(1024);

void report() {
  std::printf("================================================================\n");
  std::printf("Section 4: measured message / time / local-computation data\n");
  std::printf("================================================================\n");
  std::printf("leader election on adversarial (descending-uid) rings:\n");
  std::printf("%-6s | %-10s | %-10s | %-10s | %s\n", "n", "LCR msgs",
              "HS msgs", "Peterson", "winner");
  for (const std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    const auto lcr = run_worst_case(lcr_leader_election(), n);
    const auto hs = run_worst_case(hs_leader_election(), n);
    const auto pt = run_worst_case(peterson_leader_election(), n);
    const std::size_t best = std::min(
        {lcr.stats.messages_total, hs.stats.messages_total,
         pt.stats.messages_total});
    std::printf("%-6zu | %-10zu | %-10zu | %-10zu | %s\n", n,
                lcr.stats.messages_total, hs.stats.messages_total,
                pt.stats.messages_total,
                best == lcr.stats.messages_total ? "LCR"
                : best == pt.stats.messages_total ? "Peterson"
                                                  : "HS");
  }
  std::printf("(shape: LCR ~n^2; HS and Peterson ~n log n, Peterson's "
              "unidirectional constant is smaller)\n");

  std::printf("\nlocal computation at n = 256 (the dimension 'rarely "
              "accounted for'):\n");
  {
    const auto lcr = run_worst_case(lcr_leader_election(), 256);
    const auto hs = run_worst_case(hs_leader_election(), 256);
    const auto pt = run_worst_case(peterson_leader_election(), 256);
    std::printf("  LCR %zu   HS %zu   Peterson %zu local steps\n",
                lcr.stats.local_steps, hs.stats.local_steps,
                pt.stats.local_steps);
  }

  std::printf("\necho wave: messages vs 2|E| on every topology (n = 64):\n");
  for (const topology topo : {topology::ring, topology::line, topology::star,
                              topology::grid, topology::complete,
                              topology::random_connected}) {
    sim_transport net({.nodes = 64, .topo = topo, .seed = 21});
    net.spawn(echo_wave(0));
    const auto stats = net.run();
    std::printf("  %-18s |E| = %4zu   messages = %5zu   (2|E| = %zu)  %s\n",
                to_string(topo), net.edge_count(), stats.messages_total,
                2 * net.edge_count(),
                stats.messages_total == 2 * net.edge_count() ? "exact"
                                                             : "MISMATCH");
  }

  std::printf("\nbackend matrix: sim_transport vs parallel_transport "
              "(echo wave, n = 64, complete, seed 21):\n");
  {
    const net_options opts{.nodes = 64, .topo = topology::complete,
                           .seed = 21};
    sim_transport sim(opts);
    sim.spawn(echo_wave(0));
    const auto ss = sim.run();
    parallel_transport par(opts);
    par.spawn(echo_wave(0));
    const auto ps = par.run();
    const bool same = sim.all_decisions() == par.all_decisions() &&
                      ss.messages_total == ps.messages_total &&
                      ss.rounds == ps.rounds;
    std::printf("  sim:      %5zu messages, %3zu rounds, %5zu local steps\n",
                ss.messages_total, ss.rounds, ss.local_steps);
    std::printf("  parallel: %5zu messages, %3zu rounds, %5zu local steps "
                "(%u workers)\n",
                ps.messages_total, ps.rounds, ps.local_steps, par.workers());
    std::printf("  decisions + stats identical: %s\n",
                same ? "yes" : "MISMATCH");
  }

  std::printf("\nunified fault injection (flooding, n = 32, complete, both "
              "backends, seed 7):\n");
  {
    const net_options opts{
        .nodes = 32, .topo = topology::complete, .seed = 7,
        .faults = {.drop = 0.10, .duplicate = 0.05}};
    sim_transport sim(opts);
    sim.spawn(flooding_broadcast(0));
    const auto ss = sim.run();
    parallel_transport par(opts);
    par.spawn(flooding_broadcast(0));
    const auto ps = par.run();
    std::printf("  sim:      %zu sent, %zu dropped, %zu duplicated, "
                "%zu/32 reached\n",
                ss.messages_total, ss.messages_dropped,
                ss.messages_duplicated, sim.deciders("got").size());
    std::printf("  parallel: %zu sent, %zu dropped, %zu duplicated, "
                "%zu/32 reached\n",
                ps.messages_total, ps.messages_dropped,
                ps.messages_duplicated, par.deciders("got").size());
    std::printf("  fault plan identical across backends: %s\n",
                (ss.messages_dropped == ps.messages_dropped &&
                 ss.messages_duplicated == ps.messages_duplicated)
                    ? "yes"
                    : "MISMATCH");
  }

  std::printf("\ntaxonomy-driven selection (problem=leader-election, "
              "topology=ring, minimize messages):\n");
  const auto tax = cgp::taxonomy::distributed_taxonomy();
  for (const double n : {4.0, 16.0, 64.0, 1024.0, 65536.0}) {
    const auto best =
        tax.select({{"problem", "leader-election"}, {"topology", "ring"}},
                   "messages", {{"n", n}});
    std::printf("  n = %8.0f -> %s\n", n, best ? best->name.c_str() : "-");
  }

  std::printf("\nmeasured-vs-claimed audit (claimed bounds from the "
              "taxonomy, n = 256):\n");
  const auto lcr = run_worst_case(lcr_leader_election(), 256);
  const auto hs = run_worst_case(hs_leader_election(), 256);
  const auto env = std::map<std::string, double>{{"n", 256.0}};
  std::printf("  LCR measured %zu <= claimed %.0f : %s\n",
              lcr.stats.messages_total,
              tax.find("lcr-leader-election")->costs.at("messages").eval(env) +
                  3 * 256,
              static_cast<double>(lcr.stats.messages_total) <=
                      tax.find("lcr-leader-election")
                              ->costs.at("messages")
                              .eval(env) +
                          3 * 256
                  ? "ok"
                  : "VIOLATION");
  std::printf("  HS  measured %zu <= claimed %.0f : %s\n",
              hs.stats.messages_total,
              tax.find("hs-leader-election")->costs.at("messages").eval(env) +
                  4 * 256,
              static_cast<double>(hs.stats.messages_total) <=
                      tax.find("hs-leader-election")
                              ->costs.at("messages")
                              .eval(env) +
                          4 * 256
                  ? "ok"
                  : "VIOLATION");
  std::printf("\nsimulator benchmarks:\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
