// Section 3.1 reproduction: semantic archetypes.
//
//  * `max_element` compiles cleanly against the single-pass sequence (its
//    syntax claims ForwardIterator) but trips the archetype's multipass
//    check at run time; `find` passes — reproducing the paper's
//    Input-vs-Forward distinction.
//  * STLlint reaches the same verdict statically via its concept registry
//    lookup.
//  * Benchmarks price the semantic auditing: archetype-wrapped iteration
//    and the checked strict-weak-order comparator vs raw.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <numeric>
#include <vector>

#include "core/archetypes.hpp"
#include "sequences/sort.hpp"
#include "stllint/stllint.hpp"

namespace {

void bm_find_raw_vector(benchmark::State& state) {
  std::vector<int> v(static_cast<std::size_t>(state.range(0)));
  std::iota(v.begin(), v.end(), 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(cgp::sequences::find(v.begin(), v.end(), -1));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_find_raw_vector)->Arg(1 << 14);

void bm_find_single_pass_archetype(benchmark::State& state) {
  std::vector<int> data(static_cast<std::size_t>(state.range(0)));
  std::iota(data.begin(), data.end(), 0);
  for (auto _ : state) {
    cgp::core::single_pass_sequence<int> seq(data);  // fresh stream per pass
    benchmark::DoNotOptimize(
        cgp::sequences::find(seq.begin(), seq.end(), -1));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_find_single_pass_archetype)->Arg(1 << 14);

void bm_sort_raw_comparator(benchmark::State& state) {
  std::vector<int> base(static_cast<std::size_t>(state.range(0)));
  std::iota(base.begin(), base.end(), 0);
  std::reverse(base.begin(), base.end());
  for (auto _ : state) {
    auto v = base;
    cgp::sequences::sort(v.begin(), v.end(), std::less<>{});
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(bm_sort_raw_comparator)->Arg(1 << 14);

void bm_sort_checked_swo_comparator(benchmark::State& state) {
  std::vector<int> base(static_cast<std::size_t>(state.range(0)));
  std::iota(base.begin(), base.end(), 0);
  std::reverse(base.begin(), base.end());
  for (auto _ : state) {
    auto v = base;
    cgp::core::checked_strict_weak_order<int, std::less<>> cmp;
    cgp::sequences::sort(v.begin(), v.end(), std::ref(cmp));
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(bm_sort_checked_swo_comparator)->Arg(1 << 14);

void report() {
  std::printf("================================================================\n");
  std::printf("Section 3.1: semantic archetypes catch multipass violations\n");
  std::printf("================================================================\n");
  std::vector<int> data{4, 9, 1, 7};

  std::printf("find over a single-pass sequence (InputIterator is enough): ");
  {
    cgp::core::single_pass_sequence<int> seq(data);
    const auto it = cgp::sequences::find(seq.begin(), seq.end(), 9);
    std::printf("ok, found %d\n", *it);
  }

  std::printf("max_element over a single-pass sequence (needs "
              "ForwardIterator's multipass):\n");
  try {
    cgp::core::single_pass_sequence<int> seq(data);
    (void)cgp::sequences::max_element(seq.begin(), seq.end());
    std::printf("  UNEXPECTED: archetype did not fire\n");
  } catch (const cgp::core::semantic_archetype_violation& e) {
    std::printf("  semantic archetype violation: %s\n", e.what());
  }

  std::printf("\nSTLlint reaches the same verdict statically:\n");
  for (const auto& d : cgp::stllint::lint_source(R"(
void f(input_stream<int>& s) {
  max_element(s.begin(), s.end());
}
)").diags)
    std::printf("%s\n", d.to_string().c_str());

  std::printf("\nbroken comparator caught by the checked strict weak order "
              "(Fig. 6's asymmetry):\n");
  try {
    std::vector<int> v{2, 2, 1, 1};
    cgp::core::checked_strict_weak_order<int, std::less_equal<>> cmp;
    cgp::sequences::sort(v.begin(), v.end(), std::ref(cmp));
    std::printf("  UNEXPECTED: <= accepted as a strict weak order\n");
  } catch (const cgp::core::semantic_archetype_violation& e) {
    std::printf("  %s\n", e.what());
  }

  std::printf("\nbenchmarks price the dynamic semantic auditing:\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
