// Live observability end-to-end driver and self-check: runs PageRank on
// the parallel transport, STLlint sessions, rewrite sessions, and a
// thread-pool fan-out under sustained load while the background sampler
// streams time-series snapshots of the telemetry registry; plants a
// thread-pool stall (a task that goes silent while busy) and requires the
// watchdog to catch it within 3 sample periods; then exports and
// re-validates all three artifacts — Prometheus text exposition, the
// cgp.live.v1 series document (written to live.json; argv[1] or --out
// overrides), and the flight-recorder dump.
//
// Exit status is the contract CI gates on: non-zero when the planted
// stall goes undetected (or is detected late), when fewer than three
// subsystems produced series, or when any export fails to parse or
// validate.  With --no-stall nothing is planted and the detection
// requirement then fails by construction — CI wraps that invocation in a
// WILL_FAIL test, which simultaneously proves the gate can fail and that
// the watchdog does not false-positive on a healthy run.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "distributed/inproc_transport.hpp"
#include "distributed/parallel_transport.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/env_info.hpp"
#include "rewrite/engine.hpp"
#include "rewrite/parser.hpp"
#include "stllint/stllint.hpp"
#include "telemetry/live.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/watchdog.hpp"

namespace {

using namespace cgp;

constexpr std::size_t kMissThreshold = 2;  // detect within 3 periods
constexpr std::size_t kWarmTicks = 10;     // load runs for at least this many

class pagerank_process : public distributed::process {
 public:
  static constexpr std::size_t kRounds = 4;
  static constexpr long kScale = 1'000'000;

  void start(distributed::context& ctx) override {
    rank_ = kScale;
    send_shares(ctx);
  }
  void receive(distributed::context&, const distributed::message& m) override {
    acc_ += m.payload.at(0);
  }
  void on_round(distributed::context& ctx) override {
    if (done_) return;
    rank_ = kScale * 15 / 100 + acc_;
    acc_ = 0;
    if (ctx.round() < kRounds) {
      send_shares(ctx);
    } else {
      ctx.decide("pagerank", rank_);
      done_ = true;
    }
  }

 private:
  void send_shares(distributed::context& ctx) {
    const auto& nbrs = ctx.neighbors();
    if (nbrs.empty()) return;
    const long share = rank_ * 85 / 100 / static_cast<long>(nbrs.size());
    for (int n : nbrs) ctx.send(n, "share", {share});
    ctx.charge(nbrs.size());
  }
  long rank_ = kScale;
  long acc_ = 0;
  bool done_ = false;
};

void drive_one_load_iteration(parallel::thread_pool& pool,
                              rewrite::simplifier& simp) {
  // One run per Transport backend, so the sampler streams a
  // `distributed.network.runs.<backend>` lane for each of the three.
  {
    distributed::parallel_transport net({.nodes = 8});
    net.spawn([](int) { return std::make_unique<pagerank_process>(); });
    (void)net.run(16);
  }
  {
    distributed::sim_transport net({.nodes = 8});
    net.spawn([](int) { return std::make_unique<pagerank_process>(); });
    (void)net.run(16);
  }
  {
    distributed::inproc_transport net({.nodes = 8, .workers = 2});
    net.spawn([](int) { return std::make_unique<pagerank_process>(); });
    (void)net.run(16);
  }
  (void)stllint::lint_source(R"(
void f(vector<int>& v) {
  vector<int>::iterator it = v.begin();
  v.push_back(1);
  use(*it);
}
)");
  const std::map<std::string, std::string> types = {{"x", "int"}};
  (void)simp.simplify(rewrite::parse_expr("(x + 0) * 1 + x * 0", types));
  pool.run_chunks(8, [](std::size_t) {});
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  // With telemetry compiled out there is nothing to sample, no heartbeats,
  // and samples_taken() never advances — the warm-up loop below would spin
  // forever.  A disabled build has nothing to validate; say so and pass.
  if constexpr (!telemetry::kEnabled) {
    std::cout << "live_export: CGP_TELEMETRY_DISABLED build; live "
                 "observability is compiled out, nothing to validate\n";
    return 0;
  }
  std::string path = "live.json";
  bool plant_stall = true;
  // Sampling period: instrumented builds (tsan) pass a longer one so a
  // slow-but-healthy superstep can't masquerade as a stall.
  std::uint64_t period_ms = 40;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-stall")
      plant_stall = false;
    else if (arg == "--out" && i + 1 < argc)
      path = argv[++i];
    else if (arg == "--period-ms" && i + 1 < argc)
      period_ms = static_cast<std::uint64_t>(std::stoull(argv[++i]));
    else if (arg[0] != '-')
      path = arg;
  }

  auto& wd = telemetry::live::watchdog::global();
  auto& fr = telemetry::live::flight_recorder::global();
  wd.reset();
  fr.clear();

  // Detection bookkeeping: the callback runs on the sampler thread at the
  // verdict tick; record which tick (samples_taken) caught it.
  std::mutex det_mu;
  std::condition_variable det_cv;
  std::size_t detections = 0;
  std::uint64_t detected_at_tick = 0;

  telemetry::live::sampler sampler({.period_ms = period_ms,
                                    .capacity = 512,
                                    .watch = true,
                                    .miss_threshold = kMissThreshold});
  wd.on_stall([&](const telemetry::live::stall_event& ev) {
    const std::lock_guard lock(det_mu);
    ++detections;
    detected_at_tick = sampler.samples_taken();
    std::cout << "live_export: watchdog verdict: " << ev.participant
              << " silent " << ev.silent_ms << "ms\n";
    det_cv.notify_all();
  });
  sampler.start();

  // Sustained load across >= 3 subsystems while the sampler streams.
  parallel::thread_pool pool(3);
  rewrite::simplifier simp;
  simp.add_default_concept_rules();
  simp.enable_constant_folding();
  while (sampler.samples_taken() < kWarmTicks)
    drive_one_load_iteration(pool, simp);

  int rc = 0;
  const std::uint64_t planted_tick = sampler.samples_taken();
  if (plant_stall) {
    // The planted fault: a task that goes silent while busy for many
    // periods.  The worker marks busy around it, so the watchdog must
    // flag the worker within kMissThreshold + 1 = 3 sample periods.
    fr.note(telemetry::live::flight_entry::kind::marker, "bench.plant_stall",
            static_cast<double>(planted_tick));
    pool.submit([period_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(period_ms * 12));
    });
  }
  {
    // A healthy --no-stall run only needs a few quiet periods to prove
    // the negative; a planted stall gets a generous ceiling so a loaded
    // box cannot flake the gate.
    const std::uint64_t wait_periods = plant_stall ? 100 : 8;
    std::unique_lock lock(det_mu);
    det_cv.wait_for(lock, std::chrono::milliseconds(period_ms * wait_periods),
                    [&] { return detections > 0; });
    if (plant_stall && detections == 0) {
      std::cerr << "live_export: planted stall was NOT detected\n";
      rc = 4;
    }
    if (!plant_stall && detections == 0) {
      std::cerr << "live_export: no stall planted, none detected — failing "
                   "as the planted-stall self-check expects\n";
      rc = 4;
    }
    if (detections > 0) {
      const std::uint64_t ticks = detected_at_tick - planted_tick;
      std::cout << "live_export: stall detected " << ticks
                << " tick(s) after planting\n";
      if (ticks > kMissThreshold + 1) {
        std::cerr << "live_export: detection took " << ticks
                  << " sample periods; budget is "
                  << (kMissThreshold + 1) << "\n";
        rc = 5;
      }
    }
  }

  // Let the stalled worker finish, then a little more load so post-stall
  // samples exist, then freeze.
  pool.run_chunks(4, [](std::size_t) {});
  drive_one_load_iteration(pool, simp);
  sampler.stop();
  wd.on_stall(nullptr);

  // --- artifact 1: Prometheus exposition -----------------------------------
  const std::string prom = sampler.export_prometheus();
  if (prom.find("# TYPE cgp_parallel_thread_pool_tasks_completed counter") ==
          std::string::npos ||
      prom.find("# TYPE cgp_parallel_thread_pool_queue_depth gauge") ==
          std::string::npos) {
    std::cerr << "live_export: Prometheus exposition is missing expected "
                 "thread-pool metrics:\n"
              << prom.substr(0, 400) << "\n";
    return 6;
  }

  // --- artifact 2: the cgp.live.v1 series document --------------------------
  {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::cerr << "live_export: cannot write " << path << "\n";
      return 2;
    }
    out << sampler.export_json() << "\n";
  }
  telemetry::json_value doc;
  try {
    doc = telemetry::parse_json(slurp(path));
  } catch (const telemetry::json_error& e) {
    std::cerr << "live_export: re-parse failed: " << e.what() << "\n";
    return 3;
  }
  // Stamp the shared environment block and rewrite, as every exporter does.
  doc.obj["environment"] =
      perf::env_info(perf::utc_timestamp()).to_json();
  {
    std::ofstream out(path, std::ios::binary);
    out << telemetry::dump_json(doc) << "\n";
  }
  const auto v = telemetry::live::validate_live_export(doc);
  std::cout << "live_export: wrote " << path << "\n"
            << "  samples=" << sampler.samples_taken()
            << " series=" << v.series << " points=" << v.points
            << " counters=" << v.counters << " gauges=" << v.gauges
            << " histograms=" << v.histograms << " stalls=" << v.stalls
            << "\n";
  if (!v.ok) {
    std::cerr << "live_export: INVALID live document:\n" << v.error_text();
    return 7;
  }
  // >= 3 subsystems must actually be streaming.
  std::set<std::string> subsystems;
  for (const auto& s : doc.at("series").arr) {
    const std::string& name = s.at("name").str;
    const auto dot = name.find('.');
    if (dot != std::string::npos) subsystems.insert(name.substr(0, dot));
  }
  std::size_t covered = 0;
  for (const char* want : {"parallel", "distributed", "stllint", "rewrite"})
    if (subsystems.contains(want)) ++covered;
  if (covered < 3) {
    std::cerr << "live_export: only " << covered
              << " subsystem(s) streamed series; need >= 3\n";
    return 8;
  }
  // Every Transport backend must stream its own run-counter lane (the
  // load loop drives all three each iteration).
  std::set<std::string> series_names;
  for (const auto& s : doc.at("series").arr)
    series_names.insert(s.at("name").str);
  for (const char* backend : {"sim", "parallel", "inproc"}) {
    if (!series_names.contains("distributed.network.runs." +
                               std::string(backend))) {
      std::cerr << "live_export: no distributed.network.runs." << backend
                << " series — backend lane missing\n";
      return 13;
    }
  }
  if (plant_stall && v.stalls == 0) {
    std::cerr << "live_export: exported document carries no watchdog "
                 "verdict\n";
    return 9;
  }

  // --- artifact 3: the flight-recorder dump ---------------------------------
  telemetry::json_value flight;
  try {
    flight = telemetry::parse_json(fr.dump_json());
  } catch (const telemetry::json_error& e) {
    std::cerr << "live_export: flight dump re-parse failed: " << e.what()
              << "\n";
    return 10;
  }
  const auto fv = telemetry::live::validate_flight_dump(flight);
  std::cout << "live_export: flight ring entries=" << fv.entries
            << " spans=" << fv.spans << " counters=" << fv.counters
            << " verdicts=" << fv.watchdog_verdicts
            << " markers=" << fv.markers << "\n";
  if (!fv.ok) {
    std::cerr << "live_export: INVALID flight dump:\n" << fv.error_text();
    return 11;
  }
  if (fv.spans == 0 || fv.counters == 0 ||
      (plant_stall && fv.watchdog_verdicts == 0)) {
    std::cerr << "live_export: flight ring is missing event kinds "
                 "(spans/counters/verdicts)\n";
    return 12;
  }

  if (rc == 0) std::cout << "live_export: OK\n";
  return rc;
}
