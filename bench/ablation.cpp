// Ablation studies for design choices called out in DESIGN.md:
//
//  A1. STLlint loop-pass budget — Fig. 4's invalidation bug needs >= 2
//      abstract iterations (the first pass discovers the invalidation, the
//      second observes the stale use); more passes cost time without
//      finding more.
//  A2. Rewrite-rule instantiation cache — memoizing (rule, type, operator)
//      instantiations vs re-deriving per node.
//  A3. Constant folding on top of concept rules — extra rewrites vs cost.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>

#include "rewrite/engine.hpp"
#include "rewrite/eval.hpp"
#include "stllint/stllint.hpp"

namespace {

constexpr const char* kFig4 = R"(
vector<student_info> extract_fails(vector<student_info>& students) {
  vector<student_info> fail;
  vector<student_info>::iterator iter = students.begin();
  while (iter != students.end()) {
    if (fgrade(*iter)) {
      fail.push_back(*iter);
      students.erase(iter);
    } else
      ++iter;
  }
  return fail;
}
)";

void bm_lint_pass_budget(benchmark::State& state) {
  cgp::stllint::options opt;
  opt.max_loop_passes = static_cast<int>(state.range(0));
  bool detected = false;
  for (auto _ : state) {
    const auto r = cgp::stllint::lint_source(kFig4, opt);
    detected = !r.clean();
    benchmark::DoNotOptimize(r);
  }
  state.counters["detected"] = detected ? 1.0 : 0.0;
}
BENCHMARK(bm_lint_pass_budget)->Arg(1)->Arg(2)->Arg(3)->Arg(6)->Arg(12);

cgp::rewrite::expr deep_expression(int depth) {
  using E = cgp::rewrite::expr;
  E e = E::var("i", "int");
  for (int k = 0; k < depth; ++k) {
    e = E::binary_op("*", E::binary_op("+", e, E::int_lit(0)), E::int_lit(1));
    e = E::binary_op("+", e,
                     E::binary_op("+", E::var("j", "int"),
                                  E::unary_op("-", E::var("j", "int"))));
  }
  return e;
}

void bm_rewrite_cold_cache(benchmark::State& state) {
  const auto e = deep_expression(32);
  for (auto _ : state) {
    // Fresh simplifier per iteration: every node pays the registry lookup
    // + axiom instantiation.
    cgp::rewrite::simplifier s;
    s.add_default_concept_rules();
    benchmark::DoNotOptimize(s.simplify(e));
  }
}
BENCHMARK(bm_rewrite_cold_cache);

void bm_rewrite_warm_cache(benchmark::State& state) {
  const auto e = deep_expression(32);
  cgp::rewrite::simplifier s;
  s.add_default_concept_rules();
  (void)s.simplify(e);  // warm the instantiation cache
  for (auto _ : state) benchmark::DoNotOptimize(s.simplify(e));
}
BENCHMARK(bm_rewrite_warm_cache);

void bm_rewrite_without_folding(benchmark::State& state) {
  const auto e = deep_expression(16);
  cgp::rewrite::simplifier s;
  s.add_default_concept_rules();
  for (auto _ : state) benchmark::DoNotOptimize(s.simplify(e));
}
BENCHMARK(bm_rewrite_without_folding);

void bm_rewrite_with_folding(benchmark::State& state) {
  const auto e = deep_expression(16);
  cgp::rewrite::simplifier s;
  s.add_default_concept_rules();
  s.enable_constant_folding();
  for (auto _ : state) benchmark::DoNotOptimize(s.simplify(e));
}
BENCHMARK(bm_rewrite_with_folding);

void report() {
  std::printf("================================================================\n");
  std::printf("Ablations\n");
  std::printf("================================================================\n");
  std::printf("A1. STLlint loop-pass budget vs Fig. 4 detection:\n");
  for (int passes : {1, 2, 3, 6}) {
    cgp::stllint::options opt;
    opt.max_loop_passes = passes;
    const auto r = cgp::stllint::lint_source(kFig4, opt);
    std::printf("  passes=%d  detected=%s  diagnostics=%zu\n", passes,
                r.clean() ? "no " : "YES", r.diags.size());
  }
  std::printf("  (the join of the first iteration's erase-branch is what "
              "the second pass dereferences)\n");
  std::printf("\nA2/A3: see benchmark results below (cold vs warm "
              "instantiation cache; folding on/off).\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
