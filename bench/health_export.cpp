// Health-observatory end-to-end driver and self-check: runs SWIM gossip
// membership under churn + drop/duplicate faults on ALL THREE Transport
// backends (sim, parallel, inproc) with the observatory enabled in
// deterministic manual-clock mode, plants two anomalies —
//
//   * a HOT shard: the topology is power_law (preferential attachment),
//     so the health shard holding the highest-degree hub receives a
//     grossly skewed share of the gossip traffic;
//   * a STALLED shard: every node of one other health shard is
//     crash-stopped at round 6, so its sends flat-line while the rest of
//     the run keeps chattering;
//
// — then ticks the observatory, exports the cgp.health.v1 document to
// health.json (argv[1] or --out overrides), re-parses and structurally
// validates it, and exits non-zero unless every backend's verdicts NAME
// both planted shards.  The whole scenario runs twice and the two exports
// must be byte-identical (the manual-clock determinism contract), the
// three backends' roll-ups must agree exactly (the cross-backend
// determinism contract), and the sampled exemplars must have landed as
// valid `health.exemplar` instants in the Perfetto trace.
//
// With --no-anomaly the topology is a ring and nothing is crashed; the
// naming requirement then fails by construction — CI wraps that
// invocation in a WILL_FAIL test, which simultaneously proves the gate
// can fail and that a healthy uniform run produces no false skew/stall
// verdict (a false positive would make the twin exit 0 and trip
// WILL_FAIL).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "distributed/algorithms.hpp"
#include "distributed/inproc_transport.hpp"
#include "distributed/network.hpp"
#include "distributed/parallel_transport.hpp"
#include "perf/env_info.hpp"
#include "telemetry/health.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace cgp;
namespace health = telemetry::health;

constexpr std::size_t kNodes = 192;
constexpr std::size_t kHealthShards = 16;
constexpr std::size_t kRounds = 36;
constexpr std::size_t kSuspectTimeout = 6;
constexpr std::size_t kStallRound = 6;

// The gate's explicit rule set (health.json documents it): the runs are
// fully deterministic (fixed seed), and the skew threshold sits between
// the measured uniform-ring baseline (max/mean 1.07) and the power_law
// hub shard (2.44) with wide margin to both.
std::vector<health::slo_rule> gate_rules() {
  return {
      {.kind = health::rule_kind::skew_ratio,
       .name = "shard_skew",
       .threshold = 1.8,
       .min_activity = 1024},
      {.kind = health::rule_kind::stall_budget,
       .name = "shard_stall",
       .budget = 4},
      {.kind = health::rule_kind::drop_rate,
       .name = "drop_ceiling",
       .threshold = 0.05,
       .min_activity = 1024},
      {.kind = health::rule_kind::convergence_deadline,
       .name = "gossip_convergence",
       .budget = 8,
       .metric = "distributed.gossip.unconverged"},
  };
}

distributed::net_options scenario_options(bool anomaly) {
  distributed::net_options opts;
  opts.nodes = kNodes;
  opts.topo =
      anomaly ? distributed::topology::power_law : distributed::topology::ring;
  opts.mode = distributed::timing::synchronous;
  opts.seed = 42;
  opts.workers = 4;
  opts.faults.drop = 0.02;
  opts.faults.duplicate = 0.01;
  opts.faults.churn_crash = 0.02;
  opts.faults.churn_recover = 0.2;
  opts.faults.churn_until = 10;
  return opts;
}

struct planted {
  std::size_t hub_shard = 0;    ///< health shard of the max-degree node
  std::size_t stall_shard = 0;  ///< health shard crash-stopped at round 6
};

/// One backend's leg of the scenario.  Returns the planted shard indices
/// (identical across backends: the topology is a pure function of the
/// options).  `unconverged` accumulates survivor-view mismatches against
/// the runtime's ground truth for the convergence gauge.
template <distributed::Transport T>
planted run_backend(bool anomaly, std::size_t* unconverged) {
  const distributed::net_options opts = scenario_options(anomaly);
  T net(opts);
  net.spawn(distributed::gossip_membership(kSuspectTimeout));

  planted p;
  const std::size_t width = (kNodes + kHealthShards - 1) / kHealthShards;
  std::size_t best_degree = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    const std::size_t deg = net.neighbors_of(static_cast<int>(i)).size();
    if (deg > best_degree) {
      best_degree = deg;
      p.hub_shard = i / width;
    }
  }
  // Stall a shard far from the hub (the hub's shard must stay hot, not
  // silent).  Crashes are permanent, unlike churn.
  p.stall_shard = (p.hub_shard + kHealthShards / 2) % kHealthShards;
  if (anomaly) {
    const std::size_t lo = p.stall_shard * width;
    const std::size_t hi = std::min(kNodes, lo + width);
    for (std::size_t i = lo; i < hi; ++i)
      net.crash(static_cast<int>(i), kStallRound);
  }

  (void)net.run(kRounds);

  // Ground-truth comparison for the convergence-deadline gauge: survivors
  // still counting a dead node as a member (or missing a live one).
  const int n = static_cast<int>(net.node_count());
  for (int i = 0; i < n; ++i) {
    if (net.is_down(i)) continue;
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const auto view = net.decision(i, "member:" + std::to_string(j));
      const bool thinks_alive = view.has_value() && *view == 1;
      if (net.is_down(j) ? thinks_alive : !thinks_alive) ++*unconverged;
    }
  }
  return p;
}

/// Runs the full three-backend scenario against a freshly reset
/// observatory and returns (export bytes, planted shards).  Called twice:
/// the byte-identity check is the manual-clock determinism contract.
std::pair<std::string, planted> run_scenario(bool anomaly) {
  auto& obs = health::observatory::global();
  obs.reset();
  std::size_t unconverged = 0;
  const planted p1 = run_backend<distributed::sim_transport>(anomaly,
                                                             &unconverged);
  (void)obs.tick(1000);
  std::size_t ignored = 0;
  const planted p2 =
      run_backend<distributed::parallel_transport>(anomaly, &ignored);
  (void)obs.tick(2000);
  const planted p3 =
      run_backend<distributed::inproc_transport>(anomaly, &ignored);
  telemetry::registry::global()
      .get_gauge("distributed.gossip.unconverged")
      .set(static_cast<std::int64_t>(unconverged));
  // Run the tick count past the convergence deadline (budget 8) so the
  // deadline rule is evaluated and not vacuously skipped.
  for (std::uint64_t t = 3; t <= 10; ++t) (void)obs.tick(1000 * t);
  if (p1.hub_shard != p2.hub_shard || p1.hub_shard != p3.hub_shard ||
      p1.stall_shard != p2.stall_shard || p1.stall_shard != p3.stall_shard) {
    std::cerr << "health_export: planted shards disagree across backends\n";
    std::exit(6);
  }
  return {obs.export_json(), p1};
}

std::uint64_t count_rollup_field(const telemetry::json_value& rollup,
                                 const char* key) {
  return static_cast<std::uint64_t>(rollup.at(key).num);
}

}  // namespace

int main(int argc, char** argv) {
  if constexpr (!telemetry::kEnabled) {
    std::cout << "health_export: CGP_TELEMETRY_DISABLED build; the health "
                 "observatory is compiled out, nothing to validate\n";
    return 0;
  }
  std::string path = "health.json";
  bool anomaly = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-anomaly") anomaly = false;
    else if (arg == "--out" && i + 1 < argc) path = argv[++i];
    else if (arg[0] != '-') path = arg;
  }

  auto& obs = health::observatory::global();
  health::health_options hopts;
  hopts.shards = kHealthShards;
  hopts.reservoir_k = 8;
  hopts.seed = 42;
  hopts.manual_clock = true;
  hopts.rules = gate_rules();
  obs.enable(hopts);

  // Two complete passes; byte-identical exports are the determinism
  // contract the validator cannot check from one run.
  std::string export1, export2;
  planted p;
  std::tie(export1, p) = run_scenario(anomaly);
  std::tie(export2, p) = run_scenario(anomaly);
  if (export1 != export2) {
    std::cerr << "health_export: manual-clock exports differ between two "
                 "identical passes (" << export1.size() << " vs "
              << export2.size() << " bytes)\n";
    return 5;
  }

  telemetry::json_value doc;
  try {
    doc = telemetry::parse_json(export2);
  } catch (const telemetry::json_error& e) {
    std::cerr << "health_export: export re-parse failed: " << e.what() << "\n";
    return 3;
  }
  const auto v = health::validate_health_export(doc);
  std::cout << "health_export: backends=" << v.backends
            << " shard_rows=" << v.shards << " exemplars=" << v.exemplars
            << " verdicts=" << v.verdicts << " bytes=" << export2.size()
            << "\n";
  if (!v.ok) {
    std::cerr << "health_export: INVALID cgp.health.v1 document:\n"
              << v.error_text();
    return 7;
  }

  // Cross-backend determinism: the three roll-ups must agree exactly
  // (same seed -> same fault draws -> same per-shard traffic).
  const auto& backends = doc.at("backends").arr;
  if (backends.size() != 3) {
    std::cerr << "health_export: expected 3 backends, got " << backends.size()
              << "\n";
    return 6;
  }
  for (const char* field : {"routed", "delivered", "dropped", "duplicated",
                            "last_active_round", "rounds_active"}) {
    const std::uint64_t want =
        count_rollup_field(backends[0].at("rollup"), field);
    for (const auto& b : backends) {
      const std::uint64_t got = count_rollup_field(b.at("rollup"), field);
      if (got != want) {
        std::cerr << "health_export: backend '" << b.at("name").str
                  << "' rollup." << field << " = " << got << ", '"
                  << backends[0].at("name").str << "' says " << want
                  << " — backends diverged\n";
        return 6;
      }
    }
  }

  // The gate itself: every backend must NAME both planted shards.
  int rc = 0;
  for (const char* backend : {"sim", "parallel", "inproc"}) {
    const std::string hub = "distributed." + std::string(backend) + ".shard" +
                            std::to_string(p.hub_shard);
    const std::string stalled = "distributed." + std::string(backend) +
                                ".shard" + std::to_string(p.stall_shard);
    bool hub_named = false, stall_named = false;
    for (const auto& jv : doc.at("verdicts").arr) {
      const std::string& rule = jv.at("rule").str;
      const std::string& target = jv.at("target").str;
      if (rule == "shard_skew" && target == hub) hub_named = true;
      if (rule == "shard_stall" && target == stalled) stall_named = true;
    }
    if (!hub_named) {
      std::cerr << "health_export: no shard_skew verdict names " << hub
                << (anomaly ? "" : " — failing as the no-anomaly self-check "
                                   "expects")
                << "\n";
      rc = 4;
    }
    if (!stall_named) {
      std::cerr << "health_export: no shard_stall verdict names " << stalled
                << (anomaly ? "" : " — failing as the no-anomaly self-check "
                                   "expects")
                << "\n";
      rc = 4;
    }
  }

  // Stamp the environment and write the artifact CI uploads (before the
  // remaining checks, so a failing gate still leaves the evidence).
  doc.obj["environment"] = perf::env_info(perf::utc_timestamp()).to_json();
  {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::cerr << "health_export: cannot write " << path << "\n";
      return 2;
    }
    out << telemetry::dump_json(doc) << "\n";
  }
  std::cout << "health_export: wrote " << path << "\n";

  // Reservoir exemplars must land inside a valid Perfetto tree.  The full
  // scenario above overflows the trace ring by design (tracing is not the
  // observability layer for a 36-round three-backend soak — that is the
  // observatory's whole point), so the exemplar contract is checked on a
  // small dedicated traced run instead.
  auto& sink = telemetry::trace::sink::global();
  sink.clear();
  {
    telemetry::trace::trace_span root("bench.health_exemplars", "bench");
    distributed::net_options small;
    small.nodes = 48;
    small.topo = distributed::topology::ring;
    small.seed = 42;
    distributed::sim_transport net(small);
    net.spawn(distributed::gossip_membership(kSuspectTimeout));
    (void)net.run(8);
  }
  telemetry::json_value trace_doc;
  try {
    trace_doc = telemetry::parse_json(sink.export_chrome_trace());
  } catch (const telemetry::json_error& e) {
    std::cerr << "health_export: trace re-parse failed: " << e.what() << "\n";
    return 8;
  }
  const auto tv = telemetry::trace::validate_chrome_trace(trace_doc);
  std::size_t exemplar_instants = 0;
  for (const auto& ev : trace_doc.at("traceEvents").arr)
    if (ev.has("name") && ev.at("name").str == "health.exemplar")
      ++exemplar_instants;
  std::cout << "health_export: trace spans=" << tv.spans
            << " instants=" << tv.instants
            << " health.exemplar=" << exemplar_instants << "\n";
  if (!tv.ok) {
    std::cerr << "health_export: INVALID trace:\n" << tv.error_text();
    return 8;
  }
  if (exemplar_instants == 0) {
    std::cerr << "health_export: no health.exemplar instants in the trace\n";
    return 8;
  }
  if (rc == 0) std::cout << "health_export: OK\n";
  return rc;
}
