// Section 4 reproduction: the data-parallel generic library.  Shape to
// reproduce: near-linear speedup of Monoid-constrained reduce/scan/sort
// with thread count on sufficiently large inputs, with the concepts
// guaranteeing the reassociation is meaning-preserving.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <numeric>
#include <random>

#include "parallel/algorithms.hpp"
#include "parallel/task_group.hpp"
#include "parallel/work_stealing_pool.hpp"

namespace {

using namespace cgp::parallel;

std::vector<double> workload(std::size_t n) {
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  std::vector<double> v(n);
  for (double& x : v) x = d(rng);
  return v;
}

void bm_serial_reduce(benchmark::State& state) {
  const auto v = workload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    double acc = 0.0;
    for (double x : v) acc += x;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_serial_reduce)->Arg(1 << 22);

void bm_parallel_reduce_threads(benchmark::State& state) {
  const auto v = workload(1 << 22);
  thread_pool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        parallel_reduce<std::plus<>>(v.begin(), v.end(), {}, pool));
  state.SetItemsProcessed(state.iterations() * (1 << 22));
}
BENCHMARK(bm_parallel_reduce_threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Same algorithm, other Executor model: the concept-bounded reduce runs
// unchanged over the work-stealing scheduler.
void bm_stealing_reduce_threads(benchmark::State& state) {
  const auto v = workload(1 << 22);
  work_stealing_pool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        parallel_reduce<std::plus<>>(v.begin(), v.end(), {}, pool));
  state.SetItemsProcessed(state.iterations() * (1 << 22));
}
BENCHMARK(bm_stealing_reduce_threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Nested, irregular fork-join — the workload shape stealing exists for.
// Each root task forks a geometric tree of subtasks with skewed leaf
// costs; on the shared-queue pool every fork funnels through one mutex
// and waiters can only help FIFO, while stealing keeps forks worker-local
// and rebalances the skew.
template <class Pool>
void nested_irregular(Pool& pool, std::size_t roots) {
  task_group<Pool> group(pool);
  for (std::size_t r = 0; r < roots; ++r)
    group.run([&pool, r] {
      task_group<Pool> inner(pool);
      const std::size_t kids = 2 + r % 6;  // skewed fan-out
      for (std::size_t k = 0; k < kids; ++k)
        inner.run([r, k] {
          volatile double acc = 0.0;
          const std::size_t spins = 200 + 997 * ((r * 7 + k) % 13);
          for (std::size_t i = 0; i < spins; ++i) acc = acc + 1.0 / (i + 1.0);
        });
      inner.wait();
    });
  group.wait();
}

void bm_nested_thread_pool(benchmark::State& state) {
  thread_pool pool(4);
  for (auto _ : state) nested_irregular(pool, 64);
}
BENCHMARK(bm_nested_thread_pool);

void bm_nested_work_stealing(benchmark::State& state) {
  work_stealing_pool pool(4);
  for (auto _ : state) nested_irregular(pool, 64);
}
BENCHMARK(bm_nested_work_stealing);

void bm_parallel_scan_threads(benchmark::State& state) {
  const auto v = workload(1 << 22);
  std::vector<double> out(v.size());
  thread_pool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    parallel_inclusive_scan<std::plus<>>(v.begin(), v.end(), out.begin(), {},
                                         pool);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 22));
}
BENCHMARK(bm_parallel_scan_threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void bm_serial_sort(benchmark::State& state) {
  const auto base = workload(1 << 21);
  for (auto _ : state) {
    auto v = base;
    cgp::sequences::sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(bm_serial_sort);

void bm_parallel_sort_threads(benchmark::State& state) {
  const auto base = workload(1 << 21);
  thread_pool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    auto v = base;
    parallel_sort(v.begin(), v.end(), std::less<>{}, pool);
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(bm_parallel_sort_threads)->Arg(2)->Arg(4)->Arg(8);

void report() {
  std::printf("================================================================\n");
  std::printf("Section 4: data-parallel generic library speedups\n");
  std::printf("================================================================\n");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("hardware concurrency: %u\n\n", hw);

  const auto v = workload(1 << 23);
  const auto time_of = [&](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  double serial = 0.0;
  const double t_serial = time_of([&] {
    for (double x : v) serial += x;
  });
  std::printf("reduce over %d doubles: serial %.3fs (sum %.1f)\n", 1 << 23,
              t_serial, serial);
  std::printf("%-10s %-10s %-8s\n", "threads", "time", "speedup");
  for (const unsigned t : {1u, 2u, 4u, 8u}) {
    thread_pool pool(t);
    double r = 0.0;
    const double tt = time_of([&] {
      r = parallel_reduce<std::plus<>>(v.begin(), v.end(), {}, pool);
    });
    std::printf("%-10u %-10.3f %-8.2f %s\n", t, tt, t_serial / tt,
                std::abs(r - serial) < 1e-6 * serial ? "" : "(!! mismatch)");
  }
  std::printf("\nthe Monoid constraint is what makes the chunked "
              "reassociation legal; a\nnon-associative operation is a "
              "compile error, not a wrong answer.\n\nbenchmarks:\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
