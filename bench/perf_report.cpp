// Performance observatory driver: runs the statistical benchmark registry
// across the instrumented subsystems, emits a machine-readable
// BENCH_perf.json trajectory point, and gates against a checked-in
// baseline.
//
//   perf_report [--out FILE]              write report (default BENCH_perf.json)
//               [--baseline FILE]         compare against a baseline report
//               [--write-baseline FILE]   also write the report here
//               [--quick]                 shorter batches, same n-sweeps
//               [--time-tolerance X]      baseline time-gate ratio (default 4)
//               [--no-gate-time]          counters-only gate (deterministic)
//               [--plant-regression NAME] artificially slow one benchmark 6x
//                                         (self-test: the gate must trip)
//               [--profile]               capture a deterministic manual-clock
//                                         call-graph profile of the registry:
//                                         writes cgp.prof.v1 JSON + collapsed
//                                         stacks, prints the hot-path table,
//                                         and (with --plant-regression) the
//                                         clean-vs-planted profile diff
//               [--profile-out FILE]      profile path (default PROF_perf.json;
//                                         collapsed stacks land next to it
//                                         with a .folded extension)
//               [--profile-baseline FILE] when the baseline gate trips, diff
//                                         the captured profile against this
//                                         cgp.prof.v1 file and print the
//                                         top-5 frame deltas
//               [--self-check-diff]       with --plant-regression: exit 0 only
//                                         when the clean-vs-planted diff
//                                         localizes the planted benchmark in
//                                         its top-5 grown paths
//               [--list]                  print benchmark names and exit
//
// Exit codes: 0 ok; 1 regression vs baseline; 2 a fitted-vs-declared
// complexity verdict came back violated (or inconclusive, which for these
// curated sweeps means the harness itself broke); 3 usage/IO error; 4 an
// overhead gate (live sampler or profiler probes) exceeded its budget on
// the thread pool, or the work-stealing scaling gate lost to the legacy
// pool on the nested fork-join sweep; 5 a profile self-check failed (capture not
// byte-deterministic, structural validation, or --self-check-diff failed
// to localize the planted regression).
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "check/property.hpp"
#include "distributed/algorithms.hpp"
#include "distributed/network.hpp"
#include "distributed/parallel_transport.hpp"
#include "graph/instrumented.hpp"
#include "parallel/task_group.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing_pool.hpp"
#include "perf/benchmark.hpp"
#include "perf/env_info.hpp"
#include "perf/profdiff.hpp"
#include "perf/report.hpp"
#include "rewrite/engine.hpp"
#include "rewrite/parser.hpp"
#include "sequences/instrumented.hpp"
#include "stllint/stllint.hpp"
#include "telemetry/health.hpp"
#include "telemetry/live.hpp"
#include "telemetry/profile.hpp"

namespace {

using namespace cgp;

std::vector<int> random_ints(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(0, 1 << 30);
  std::vector<int> v(n);
  for (int& x : v) x = dist(rng);
  return v;
}

// Nested, irregular fork-join — the workload shape work stealing exists
// for (same tree as bench/sec4_dataparallel.cpp).  Each of n roots forks
// a skewed batch of leaf tasks through a nested task_group, so the total
// task count is a deterministic, linear function of n and the scaling
// pair below can fit (and baseline-gate) ops on the pools' task counters.
template <class Pool>
void nested_irregular(Pool& pool, std::size_t roots) {
  parallel::task_group<Pool> group(pool);
  for (std::size_t r = 0; r < roots; ++r)
    group.run([&pool, r] {
      parallel::task_group<Pool> inner(pool);
      const std::size_t kids = 2 + r % 6;  // skewed fan-out
      for (std::size_t k = 0; k < kids; ++k)
        inner.run([r, k] {
          volatile double acc = 0.0;
          const std::size_t spins = 200 + 997 * ((r * 7 + k) % 13);
          for (std::size_t i = 0; i < spins; ++i) acc = acc + 1.0 / (i + 1.0);
        });
      inner.wait();
    });
  group.wait();
}

// --- benchmark registry -----------------------------------------------------

// Quick mode truncates the distributed.scaling node sweep here: the
// million-node point is a multi-second workload per invocation, which the
// shortened timing batches cannot amortize.  main() prunes the same points
// from the BASELINE before gating, so the truncation reads as "not
// measured today", never as a coverage regression.
constexpr std::size_t kQuickScalingCap = 100'000;

perf::bench_registry build_registry(bool quick) {
  perf::bench_registry reg;

  // Concept-dispatched introsort: ComplexityO(n log n) comparisons.
  reg.add({.name = "sequences.sort",
           .subsystem = "sequences",
           .declared = core::big_o::power("n", 1, 1),
           .sizes = {512, 1024, 2048, 4096, 8192},
           .counter_prefix = "sequences.sort.comparisons",
           .setup = [](std::size_t n) -> std::function<void()> {
             auto input = random_ints(n, static_cast<std::uint32_t>(n));
             return [input] {
               auto v = input;
               (void)sequences::instrumented::sort(v.begin(), v.end());
             };
           }});

  // Buffered mergesort: also O(n log n), strictly stable.
  reg.add({.name = "sequences.stable_sort",
           .subsystem = "sequences",
           .declared = core::big_o::power("n", 1, 1),
           .sizes = {512, 1024, 2048, 4096, 8192},
           .counter_prefix = "sequences.stable_sort.comparisons",
           .setup = [](std::size_t n) -> std::function<void()> {
             auto input = random_ints(n, static_cast<std::uint32_t>(n) + 7);
             return [input] {
               auto v = input;
               (void)sequences::instrumented::stable_sort(v.begin(), v.end());
             };
           }});

  // Binary search on a random-access range: O(log n) comparisons.
  reg.add({.name = "sequences.lower_bound",
           .subsystem = "sequences",
           .declared = core::big_o::log_n(),
           .sizes = {1024, 4096, 16384, 65536, 262144},
           .counter_prefix = "sequences.lower_bound.comparisons",
           .setup = [](std::size_t n) -> std::function<void()> {
             std::vector<int> sorted(n);
             std::iota(sorted.begin(), sorted.end(), 0);
             auto key = std::make_shared<std::size_t>(0);
             return [sorted, key, n] {
               *key = (*key * 2654435761u + 1) % n;
               (void)sequences::instrumented::lower_bound_count(
                   sorted.begin(), sorted.end(), static_cast<int>(*key));
             };
           }});

  // Fixpoint simplification of an n-term identity chain.  The bottom-up
  // pass collapses every `+ 0` in one sweep, so the measured cost is
  // linear in the chain length — declared O(n), which the fit enforces
  // (a rule change that reintroduces per-pass rescans would show up as a
  // violated verdict here).
  reg.add({.name = "rewrite.simplifier",
           .subsystem = "rewrite",
           .declared = core::big_o::n(),
           .sizes = {8, 16, 32, 64, 128},
           .counter_prefix = "rewrite.simplifier.",
           .setup = [](std::size_t n) -> std::function<void()> {
             std::string src = "x";
             for (std::size_t i = 0; i < n; ++i) src = "(" + src + " + 0)";
             auto e = std::make_shared<rewrite::expr>(
                 rewrite::parse_expr(src, {{"x", "int"}}));
             auto simp = std::make_shared<rewrite::simplifier>();
             simp->add_default_concept_rules();
             simp->enable_constant_folding();
             return [e, simp] { (void)simp->simplify(*e); };
           }});

  // STLlint fixpoint analysis over n generated functions: linear in the
  // amount of code.
  reg.add({.name = "stllint.analyzer",
           .subsystem = "stllint",
           .declared = core::big_o::n(),
           .sizes = {4, 8, 16, 32, 64},
           .counter_prefix = "stllint.analyzer.",
           .setup = [](std::size_t n) -> std::function<void()> {
             std::ostringstream src;
             for (std::size_t i = 0; i < n; ++i)
               src << "void f" << i << "(vector<int>& v) {\n"
                   << "  int i = 0;\n"
                   << "  while (i < 10) {\n"
                   << "    v.push_back(i);\n"
                   << "    i = i + 1;\n"
                   << "  }\n"
                   << "}\n";
             auto source = std::make_shared<std::string>(src.str());
             return [source] { (void)stllint::lint_source(*source); };
           }});

  // Thread pool fan-out: n chunks cost n submitted + n completed tasks.
  // The pool itself is constructed in setup, outside the timed region.
  reg.add({.name = "parallel.thread_pool",
           .subsystem = "parallel",
           .declared = core::big_o::n(),
           .sizes = {8, 16, 32, 64, 128},
           .counter_prefix = "parallel.thread_pool.tasks",
           .setup = [](std::size_t n) -> std::function<void()> {
             auto pool = std::make_shared<parallel::thread_pool>(2);
             return [pool, n] {
               pool->run_chunks(n, [](std::size_t c) {
                 volatile std::size_t sink = 0;
                 for (std::size_t i = 0; i < 64; ++i) sink = sink + c;
               });
             };
           }});

  // The same fan-out with the live sampler streaming in the background:
  // the pair quantifies continuous observation's cost on the hottest
  // concurrent path.  Same declared bound, same deterministic task
  // counters; the sampler_overhead gate below compares the two sweeps'
  // wall times and trips when sampling costs more than its budget.
  reg.add({.name = "parallel.thread_pool.sampled",
           .subsystem = "parallel",
           .declared = core::big_o::n(),
           .sizes = {8, 16, 32, 64, 128},
           .counter_prefix = "parallel.thread_pool.tasks",
           .setup = [](std::size_t n) -> std::function<void()> {
             auto pool = std::make_shared<parallel::thread_pool>(2);
             auto sampler = std::make_shared<telemetry::live::sampler>(
                 telemetry::live::sample_options{.period_ms = 25,
                                                 .capacity = 256,
                                                 .watch = true});
             sampler->start();
             return [pool, sampler, n] {
               pool->run_chunks(n, [](std::size_t c) {
                 volatile std::size_t sink = 0;
                 for (std::size_t i = 0; i < 64; ++i) sink = sink + c;
               });
             };
           }});

  // And the same fan-out again with profiler probes live: the profiling
  // session enables wall-clock collection for this sweep only, so every
  // task runs the submit wrapper (path capture + adopt + probe).  The
  // probe_overhead gate below compares this sweep against the bare pool
  // and trips when attribution costs more than its budget.
  reg.add({.name = "parallel.thread_pool.profiled",
           .subsystem = "parallel",
           .declared = core::big_o::n(),
           .sizes = {8, 16, 32, 64, 128},
           .counter_prefix = "parallel.thread_pool.tasks",
           .setup = [](std::size_t n) -> std::function<void()> {
             auto pool = std::make_shared<parallel::thread_pool>(2);
             // RAII profiling session: enable on entry unless an outer
             // capture (--profile) already owns the profiler, in which
             // case both ends are no-ops and the outer clock mode wins.
             struct profiling_session {
               bool owned;
               profiling_session()
                   : owned(!telemetry::profile::profiler::global().enabled()) {
                 if (owned) {
                   telemetry::profile::profiler::global().set_manual_clock(
                       false);
                   telemetry::profile::profiler::global().enable();
                 }
               }
               ~profiling_session() {
                 if (owned) telemetry::profile::profiler::global().disable();
               }
             };
             auto session = std::make_shared<profiling_session>();
             return [pool, session, n] {
               pool->run_chunks(n, [](std::size_t c) {
                 volatile std::size_t sink = 0;
                 for (std::size_t i = 0; i < 64; ++i) sink = sink + c;
               });
             };
           }});

  // Threads-sweep scaling pair (DESIGN.md §12): the SAME nested irregular
  // fork-join runs on both Executor models at the same width.  The task
  // counters are deterministic (n roots plus a skewed, arithmetic number
  // of kids), so the baseline counter gate pins the amount of scheduled
  // work on both sides; the scaling gate in main() then compares the two
  // sweeps' wall times and trips when the stealing pool's bootstrap CI
  // separates ABOVE the shared-queue pool's past its budget — i.e. the
  // redesign must never lose throughput on the workload it exists for.
  reg.add({.name = "parallel.scaling.thread_pool",
           .subsystem = "parallel",
           .declared = core::big_o::n(),
           .sizes = {8, 16, 32, 64},
           .counter_prefix = "parallel.thread_pool.tasks",
           .deterministic_profile = false,
           .setup = [](std::size_t n) -> std::function<void()> {
             auto pool = std::make_shared<parallel::thread_pool>(
                 parallel::pool_options{.workers = 4});
             return [pool, n] { nested_irregular(*pool, n); };
           }});

  reg.add({.name = "parallel.scaling.work_stealing",
           .subsystem = "parallel",
           .declared = core::big_o::n(),
           .sizes = {8, 16, 32, 64},
           .counter_prefix = "parallel.work_stealing.tasks",
           .deterministic_profile = false,
           .setup = [](std::size_t n) -> std::function<void()> {
             auto pool = std::make_shared<parallel::work_stealing_pool>(
                 parallel::pool_options{.workers = 4});
             return [pool, n] { nested_irregular(*pool, n); };
           }});

  // Echo wave (PIF) on a ring under the deterministic simulator: two
  // messages per edge, and a ring has n edges.
  reg.add({.name = "distributed.sim_transport",
           .subsystem = "distributed",
           .declared = core::big_o::n(),
           .sizes = {8, 16, 32, 64, 128},
           .counter_prefix = "distributed.network.messages",
           .setup = [](std::size_t n) -> std::function<void()> {
             return [n] {
               distributed::sim_transport net(
                   {.nodes = n, .topo = distributed::topology::ring});
               net.spawn(distributed::echo_wave(0));
               (void)net.run();
             };
           }});

  // The same echo wave with the health observatory live: every send pays
  // the per-shard relaxed fetch_adds and every round the O(health shards)
  // barrier fold.  Same declared bound, same deterministic message
  // counters; the health_overhead gate below compares the two sweeps and
  // trips when observation costs more than its budget.
  reg.add({.name = "distributed.sim_transport.health",
           .subsystem = "distributed",
           .declared = core::big_o::n(),
           .sizes = {8, 16, 32, 64, 128},
           .counter_prefix = "distributed.network.messages",
           .setup = [](std::size_t n) -> std::function<void()> {
             // RAII health session, mirroring profiling_session: enable on
             // entry unless an outer session already owns the observatory.
             struct health_session {
               bool owned;
               health_session()
                   : owned(!telemetry::health::observatory::global()
                                .enabled()) {
                 if (owned) telemetry::health::observatory::global().enable();
               }
               ~health_session() {
                 if (owned) {
                   telemetry::health::observatory::global().disable();
                   telemetry::health::observatory::global().reset();
                 }
               }
             };
             auto session = std::make_shared<health_session>();
             return [session, n] {
               distributed::sim_transport net(
                   {.nodes = n, .topo = distributed::topology::ring});
               net.spawn(distributed::echo_wave(0));
               (void)net.run();
             };
           }});

  // The same wave on a complete topology via the thread-pool backend:
  // message count is edge count, i.e. quadratic in nodes.
  reg.add({.name = "distributed.parallel_transport",
           .subsystem = "distributed",
           .declared = core::big_o::power("n", 2, 0),
           .sizes = {4, 8, 16, 32},
           .counter_prefix = "distributed.network.messages",
           .setup = [](std::size_t n) -> std::function<void()> {
             return [n] {
               distributed::parallel_transport net(
                   {.nodes = n,
                    .topo = distributed::topology::complete,
                    .workers = 2});
               net.spawn(distributed::echo_wave(0));
               (void)net.run();
             };
           }});

  // Node-count scaling of the CSR-topology simulator (DESIGN.md §13): a
  // bounded two-round heartbeat run over a ring, swept 1k -> 1M nodes.
  // Messages are exactly linear in n (two beats per node per round), so
  // the baseline counter gate pins the per-node message cost while the
  // fit enforces that a full construct-spawn-run cycle stays O(n) — a
  // reintroduced per-node copy or an O(n^2) routing scan shows up as a
  // violated verdict or a tripped time gate at the top of the sweep.
  {
    std::vector<std::size_t> sizes = {1'000, 10'000, 100'000, 1'000'000};
    if (quick)
      std::erase_if(sizes, [](std::size_t n) { return n > kQuickScalingCap; });
    reg.add({.name = "distributed.scaling",
             .subsystem = "distributed",
             .declared = core::big_o::n(),
             .sizes = std::move(sizes),
             .counter_prefix = "distributed.network.messages",
             .setup = [](std::size_t n) -> std::function<void()> {
               return [n] {
                 distributed::sim_transport net(
                     {.nodes = n, .topo = distributed::topology::ring});
                 net.spawn(distributed::heartbeat_detector(2));
                 (void)net.run(2);
               };
             }});
  }

  // BFS over a ring: O(V + E) = O(n) relaxations.
  reg.add({.name = "graph.bfs",
           .subsystem = "graph",
           .declared = core::big_o::n(),
           .sizes = {256, 512, 1024, 2048, 4096},
           .counter_prefix = "graph.bfs.operations",
           .setup = [](std::size_t n) -> std::function<void()> {
             auto g = std::make_shared<graph::adjacency_list<double>>(n);
             for (std::size_t i = 0; i < n; ++i)
               g->add_edge(i, (i + 1) % n, 1.0);
             return [g] { (void)graph::instrumented::bfs_distances(*g, 0); };
           }});

  return reg;
}

// --- CLI --------------------------------------------------------------------

struct options {
  std::string out = "BENCH_perf.json";
  std::string baseline;
  std::string write_baseline;
  std::string plant;
  std::string profile_out = "PROF_perf.json";
  std::string profile_baseline;
  double time_tolerance = 4.0;
  bool gate_time = true;
  bool quick = false;
  bool list = false;
  bool profile = false;
  bool self_check_diff = false;
};

bool parse_args(int argc, char** argv, options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--out") {
      const char* v = next();
      if (!v) return false;
      o.out = v;
    } else if (a == "--baseline") {
      const char* v = next();
      if (!v) return false;
      o.baseline = v;
    } else if (a == "--write-baseline") {
      const char* v = next();
      if (!v) return false;
      o.write_baseline = v;
    } else if (a == "--plant-regression") {
      const char* v = next();
      if (!v) return false;
      o.plant = v;
    } else if (a == "--time-tolerance") {
      const char* v = next();
      if (!v) return false;
      o.time_tolerance = std::stod(v);
    } else if (a == "--profile") {
      o.profile = true;
    } else if (a == "--profile-out") {
      const char* v = next();
      if (!v) return false;
      o.profile_out = v;
    } else if (a == "--profile-baseline") {
      const char* v = next();
      if (!v) return false;
      o.profile_baseline = v;
    } else if (a == "--self-check-diff") {
      o.self_check_diff = true;
    } else if (a == "--no-gate-time") {
      o.gate_time = false;
    } else if (a == "--quick") {
      o.quick = true;
    } else if (a == "--list") {
      o.list = true;
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return false;
    }
  }
  return true;
}

// --- overhead gates ---------------------------------------------------------

// Continuous observation must stay within a 10% tax on the thread pool:
// the live sampler (PR 6) and the profiler's probes alike.
constexpr double kSamplerOverheadBudget = 1.10;
constexpr double kProbeOverheadBudget = 1.10;
// The health observatory's per-message atomics and per-round shard folds
// must fit in the same 10% tax on the distributed engine.
constexpr double kHealthOverheadBudget = 1.10;
// The work-stealing pool must not lose throughput to the legacy
// shared-queue pool on the nested irregular fork-join sweep.  The budget
// is generous (and the CI separation asymmetric, see gate_overhead_pair)
// because a saturated single-core runner serializes both schedules —
// only a genuine scheduling pathology separates the intervals.
constexpr double kScalingBudget = 1.25;

struct overhead_verdict {
  bool present = false;  ///< both sweeps found
  bool ok = true;
  telemetry::json_value block;  ///< the report object for this gate
};

// Compares an instrumented thread-pool sweep against the bare one, point
// by point.  Wall time is noisy ON BOTH SIDES, so a point counts as over
// budget only when the two bootstrap CIs separate past the budget — the
// instrumented run's CI.lo clears budget * the bare run's CI.hi (a slow
// bare sample must not manufacture headroom, and a slow instrumented
// sample must not manufacture a violation) — and the gate fails only when
// at least half the sweep points are over.  A genuine blowup (the planted
// 6x twin) separates the intervals at every point; jitter does not.
// `a_key`/`b_key` label the two sides in the emitted JSON block
// ("unsampled"/"sampled" for the observation-tax gates, pool names for
// the scaling gate); the verdict logic is identical either way.
overhead_verdict gate_overhead_pair(
    const std::vector<perf::benchmark_result>& results,
    const std::string& bare_name, const std::string& instrumented_name,
    double budget, const std::string& a_key = "unsampled",
    const std::string& b_key = "sampled") {
  overhead_verdict v;
  const perf::benchmark_result* plain = nullptr;
  const perf::benchmark_result* sampled = nullptr;
  for (const auto& r : results) {
    if (r.name == bare_name) plain = &r;
    if (r.name == instrumented_name) sampled = &r;
  }
  if (!plain || !sampled || plain->sweep.size() != sampled->sweep.size())
    return v;
  v.present = true;

  const auto num = [](double x) {
    telemetry::json_value j;
    j.k = telemetry::json_value::kind::number;
    j.num = x;
    return j;
  };
  v.block.k = telemetry::json_value::kind::object;
  v.block.obj["budget_ratio"] = num(budget);
  telemetry::json_value pts;
  pts.k = telemetry::json_value::kind::array;
  std::size_t over = 0;
  for (std::size_t i = 0; i < plain->sweep.size(); ++i) {
    const auto& p = plain->sweep[i];
    const auto& s = sampled->sweep[i];
    const double ratio =
        p.time_ns.median > 0.0 ? s.time_ns.median / p.time_ns.median : 0.0;
    const bool tripped = p.time_ns.ci.hi > 0.0 &&
                         s.time_ns.ci.lo > p.time_ns.ci.hi * budget;
    if (tripped) ++over;
    telemetry::json_value pt;
    pt.k = telemetry::json_value::kind::object;
    pt.obj["n"] = num(static_cast<double>(p.n));
    pt.obj[a_key + "_median_ns"] = num(p.time_ns.median);
    pt.obj[a_key + "_ci_hi_ns"] = num(p.time_ns.ci.hi);
    pt.obj[b_key + "_median_ns"] = num(s.time_ns.median);
    pt.obj[b_key + "_ci_lo_ns"] = num(s.time_ns.ci.lo);
    pt.obj["ratio"] = num(ratio);
    telemetry::json_value t;
    t.k = telemetry::json_value::kind::boolean;
    t.b = tripped;
    pt.obj["over_budget"] = std::move(t);
    pts.arr.push_back(std::move(pt));
  }
  v.ok = over < (plain->sweep.size() + 1) / 2;
  v.block.obj["points"] = std::move(pts);
  v.block.obj["points_over_budget"] = num(static_cast<double>(over));
  telemetry::json_value ok;
  ok.k = telemetry::json_value::kind::boolean;
  ok.b = v.ok;
  v.block.obj["ok"] = std::move(ok);
  return v;
}

// --- deterministic profile capture ------------------------------------------

struct profile_capture {
  telemetry::profile::profile_snapshot snap;
  std::string json;    ///< cgp.prof.v1 text (byte-deterministic)
  std::string folded;  ///< flamegraph.pl collapsed stacks
};

// Runs every benchmark's workload a fixed number of times under the
// manual clock, outside the adaptive timing harness (whose calibrated
// invocation counts are wall-clock dependent and would wreck
// determinism).  Each benchmark gets a `bench.<name>` frame on the
// driver thread; worker-side probes re-root under it via the thread
// pool's shadow-path propagation.
profile_capture capture_profile(const perf::bench_registry& registry) {
  auto& prof = telemetry::profile::profiler::global();
  prof.disable();
  prof.set_manual_clock(true);
  prof.reset();
  prof.enable();
  for (const auto& def : registry.all()) {
    // Nested fork-join sweeps opt out: helping makes their manual-clock
    // attribution scheduling-dependent (see benchmark_def).
    if (!def.deterministic_profile) continue;
    telemetry::profile::probe bench_probe(
        std::string_view("bench." + def.name));
    for (const std::size_t n : def.sizes) {
      auto workload = def.setup(n);
      for (int rep = 0; rep < 2; ++rep) workload();
    }
  }
  prof.disable();
  profile_capture cap;
  cap.snap = prof.snapshot();
  prof.set_manual_clock(false);
  cap.json = telemetry::profile::export_json(cap.snap);
  cap.folded = telemetry::profile::collapsed(cap.snap);
  return cap;
}

// The collapsed-stack artifact lands next to the profile JSON.
std::string folded_path_for(const std::string& profile_out) {
  const std::string suffix = ".json";
  if (profile_out.size() > suffix.size() &&
      profile_out.compare(profile_out.size() - suffix.size(), suffix.size(),
                          suffix) == 0)
    return profile_out.substr(0, profile_out.size() - suffix.size()) +
           ".folded";
  return profile_out + ".folded";
}

}  // namespace

int main(int argc, char** argv) {
  options opt;
  if (!parse_args(argc, argv, opt)) return 3;

  perf::bench_registry registry = build_registry(opt.quick);
  if (opt.list) {
    for (const auto& def : registry.all())
      std::cout << def.name << " (" << def.declared.to_string() << ")\n";
    return 0;
  }

  // Self-test hook: make one benchmark genuinely more expensive — the
  // workload runs 6x per invocation, so its deterministic per-iteration
  // counters (and its time) inflate 6x and the baseline gate must trip.
  if (!opt.plant.empty()) {
    perf::bench_registry planted;
    bool found = false;
    for (auto def : registry.all()) {
      if (def.name == opt.plant) {
        found = true;
        auto inner = def.setup;
        def.setup = [inner](std::size_t n) -> std::function<void()> {
          auto workload = inner(n);
          return [workload] {
            for (int i = 0; i < 6; ++i) workload();
          };
        };
      }
      planted.add(std::move(def));
    }
    if (!found) {
      std::cerr << "--plant-regression: no benchmark named " << opt.plant
                << "\n";
      return 3;
    }
    registry = std::move(planted);
  }
  if (opt.self_check_diff && opt.plant.empty()) {
    std::cerr << "--self-check-diff requires --plant-regression\n";
    return 3;
  }

  // Deterministic profile capture: two manual-clock passes over the (possibly
  // planted) registry must serialize byte-identically, and the document must
  // pass structural validation, before the artifacts are written.
  const bool want_profile = opt.profile || opt.self_check_diff;
  profile_capture cap;
  telemetry::json_value prof_doc;
  if (want_profile) {
    cap = capture_profile(registry);
    const profile_capture again = capture_profile(registry);
    if (cap.json != again.json) {
      std::cerr << "profile self-check: two manual-clock captures are not "
                   "byte-identical\n";
      return 5;
    }
    prof_doc = telemetry::parse_json(cap.json);
    const auto pv = telemetry::profile::validate_profile(prof_doc);
    if (!pv.ok) {
      std::cerr << "profile self-check: cgp.prof.v1 validation failed:\n";
      for (const auto& e : pv.errors) std::cerr << "  " << e << "\n";
      return 5;
    }
    const std::string folded_path = folded_path_for(opt.profile_out);
    for (const auto& [path, text] :
         {std::pair<const std::string&, const std::string&>{opt.profile_out,
                                                            cap.json},
          {folded_path, cap.folded}}) {
      std::ofstream out(path);
      if (!out) {
        std::cerr << "cannot write " << path << "\n";
        return 3;
      }
      out << text;
      if (&text == &cap.json) out << "\n";
    }
    std::cout << "profile: " << pv.nodes << " frames over " << pv.roots
              << " roots (depth " << pv.max_depth
              << "), captured twice byte-identically -> " << opt.profile_out
              << " + " << folded_path << "\n";
    std::cout << telemetry::profile::render_hot_table(cap.snap, 10);
  }

  // Clean-vs-planted attribution: diff an un-planted capture against the
  // planted one; the planted benchmark's paths must dominate the deltas.
  if (want_profile && !opt.plant.empty()) {
    const profile_capture clean = capture_profile(build_registry(opt.quick));
    const auto diff =
        perf::profile_diff(telemetry::parse_json(clean.json), prof_doc);
    std::cout << perf::render_profile_diff(diff, 5);
    if (opt.self_check_diff) {
      const std::string needle = "bench." + opt.plant;
      bool localized = false;
      for (std::size_t i = 0; i < diff.deltas.size() && i < 5; ++i)
        if (diff.deltas[i].status == "grown" &&
            diff.deltas[i].path.find(needle) != std::string::npos)
          localized = true;
      if (!localized) {
        std::cerr << "--self-check-diff: top-5 profile deltas do not name "
                  << needle << "\n";
        return 5;
      }
      std::cout << "profile diff localizes the planted regression at "
                << needle << "\n";
      return 0;
    }
  }

  // Quick mode keeps the n-sweeps identical (counters must match the
  // baseline exactly) and only shrinks the timing batches.
  perf::timing_options topts;
  if (opt.quick) {
    topts.min_sample_ns = 200'000;
    topts.repeats = 5;
  }

  const std::uint64_t seed = check::default_seed();
  std::cout << check::seed_banner() << "\n";

  const auto results = perf::run_all(registry, topts, seed);
  const auto env = perf::env_info(perf::utc_timestamp());
  auto doc = perf::report_json(results, env);
  const auto overhead =
      gate_overhead_pair(results, "parallel.thread_pool",
                         "parallel.thread_pool.sampled", kSamplerOverheadBudget);
  if (overhead.present) doc.obj["sampler_overhead"] = overhead.block;
  const auto probe_overhead =
      gate_overhead_pair(results, "parallel.thread_pool",
                         "parallel.thread_pool.profiled", kProbeOverheadBudget);
  if (probe_overhead.present) doc.obj["probe_overhead"] = probe_overhead.block;
  const auto health_overhead = gate_overhead_pair(
      results, "distributed.sim_transport", "distributed.sim_transport.health",
      kHealthOverheadBudget, "unobserved", "observed");
  if (health_overhead.present)
    doc.obj["health_overhead"] = health_overhead.block;
  const auto scaling =
      gate_overhead_pair(results, "parallel.scaling.thread_pool",
                         "parallel.scaling.work_stealing", kScalingBudget,
                         "thread_pool", "work_stealing");
  if (scaling.present) doc.obj["scaling_gate"] = scaling.block;
  const std::string rendered = telemetry::dump_json(doc);

  for (const std::string& path : {opt.out, opt.write_baseline}) {
    if (path.empty()) continue;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return 3;
    }
    out << rendered << "\n";
  }

  bool fit_failed = false;
  for (const auto& r : results) {
    std::cout << r.name << ": declared " << r.declared << ", fitted n^"
              << r.fit.exponent << " on " << r.fitted_on << " -> "
              << perf::to_string(r.fit.v) << "\n";
    if (r.fit.v != perf::verdict::consistent) fit_failed = true;
  }
  std::cout << results.size() << " benchmarks -> " << opt.out << " ("
            << env.to_string() << ")\n";

  int rc = 0;
  if (!opt.baseline.empty()) {
    std::ifstream in(opt.baseline);
    if (!in) {
      std::cerr << "cannot read baseline " << opt.baseline << "\n";
      return 3;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    telemetry::json_value base;
    try {
      base = telemetry::parse_json(buf.str());
    } catch (const telemetry::json_error& e) {
      std::cerr << "baseline is not valid JSON: " << e.what() << "\n";
      return 3;
    }
    // Quick mode measured a truncated distributed.scaling sweep (see
    // kQuickScalingCap); drop the same points from the baseline so the
    // comparison covers exactly what ran, instead of reporting the capped
    // points as coverage regressions.
    if (opt.quick && base.has("benchmarks") &&
        base.at("benchmarks").is(telemetry::json_value::kind::array)) {
      for (telemetry::json_value& b : base.obj["benchmarks"].arr) {
        if (!b.has("name") || b.at("name").str != "distributed.scaling")
          continue;
        const auto sweep = b.obj.find("sweep");
        if (sweep == b.obj.end()) continue;
        std::erase_if(sweep->second.arr, [](const telemetry::json_value& pt) {
          return pt.has("n") &&
                 pt.at("n").num > static_cast<double>(kQuickScalingCap);
        });
      }
    }
    const perf::gate_options gate{.counter_ratio = 1.30,
                                  .time_ratio = opt.time_tolerance,
                                  .gate_time = opt.gate_time};
    const auto regressions = perf::compare_reports(doc, base, gate);
    for (const auto& r : regressions)
      std::cerr << "REGRESSION [" << r.what << "] " << r.benchmark << ": "
                << r.detail << "\n";
    if (!regressions.empty()) rc = 1;
    else std::cout << "baseline gate: ok (" << opt.baseline << ")\n";
    // Attribution: when the gate trips and a profile baseline is on hand,
    // name the culprit call paths instead of just the benchmark.
    if (rc == 1 && want_profile && !opt.profile_baseline.empty()) {
      std::ifstream pin(opt.profile_baseline);
      if (!pin) {
        std::cerr << "cannot read profile baseline " << opt.profile_baseline
                  << "\n";
      } else {
        std::stringstream pbuf;
        pbuf << pin.rdbuf();
        try {
          const auto base_prof = telemetry::parse_json(pbuf.str());
          const auto diff = perf::profile_diff(base_prof, prof_doc);
          std::cerr << perf::render_profile_diff(diff, 5);
        } catch (const telemetry::json_error& e) {
          std::cerr << "profile baseline is not valid JSON: " << e.what()
                    << "\n";
        }
      }
    }
  }

  if (fit_failed) {
    std::cerr << "a complexity fit is not consistent with its declared "
                 "bound\n";
    rc = rc == 0 ? 2 : rc;
  }

  if (overhead.present) {
    if (overhead.ok) {
      std::cout << "sampler overhead gate: ok (budget "
                << kSamplerOverheadBudget << "x)\n";
    } else {
      std::cerr << "sampler overhead gate: background sampling costs more "
                   "than "
                << kSamplerOverheadBudget
                << "x the unsampled thread pool at half or more sweep "
                   "points\n";
      rc = rc == 0 ? 4 : rc;
    }
  }
  if (probe_overhead.present) {
    if (probe_overhead.ok) {
      std::cout << "probe overhead gate: ok (budget " << kProbeOverheadBudget
                << "x)\n";
    } else {
      std::cerr << "probe overhead gate: profiler probes cost more than "
                << kProbeOverheadBudget
                << "x the bare thread pool at half or more sweep points\n";
      rc = rc == 0 ? 4 : rc;
    }
  }
  if (health_overhead.present) {
    if (health_overhead.ok) {
      std::cout << "health overhead gate: ok (budget "
                << kHealthOverheadBudget << "x)\n";
    } else {
      std::cerr << "health overhead gate: the observatory costs more than "
                << kHealthOverheadBudget
                << "x the unobserved sim transport at half or more sweep "
                   "points\n";
      rc = rc == 0 ? 4 : rc;
    }
  }
  if (scaling.present) {
    if (scaling.ok) {
      std::cout << "scaling gate: ok — work_stealing_pool holds throughput "
                   "against thread_pool on the nested fork-join sweep "
                   "(budget "
                << kScalingBudget << "x)\n";
    } else {
      std::cerr << "scaling gate: work_stealing_pool is more than "
                << kScalingBudget
                << "x slower than thread_pool on the nested fork-join sweep "
                   "at half or more points\n";
      rc = rc == 0 ? 4 : rc;
    }
  }
  return rc;
}
