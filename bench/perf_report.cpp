// Performance observatory driver: runs the statistical benchmark registry
// across the instrumented subsystems, emits a machine-readable
// BENCH_perf.json trajectory point, and gates against a checked-in
// baseline.
//
//   perf_report [--out FILE]              write report (default BENCH_perf.json)
//               [--baseline FILE]         compare against a baseline report
//               [--write-baseline FILE]   also write the report here
//               [--quick]                 shorter batches, same n-sweeps
//               [--time-tolerance X]      baseline time-gate ratio (default 4)
//               [--no-gate-time]          counters-only gate (deterministic)
//               [--plant-regression NAME] artificially slow one benchmark 6x
//                                         (self-test: the gate must trip)
//               [--list]                  print benchmark names and exit
//
// Exit codes: 0 ok; 1 regression vs baseline; 2 a fitted-vs-declared
// complexity verdict came back violated (or inconclusive, which for these
// curated sweeps means the harness itself broke); 3 usage/IO error; 4 the
// live sampler's measured overhead on the thread pool exceeded its budget.
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "check/property.hpp"
#include "distributed/algorithms.hpp"
#include "distributed/network.hpp"
#include "distributed/parallel_transport.hpp"
#include "graph/instrumented.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/benchmark.hpp"
#include "perf/env_info.hpp"
#include "perf/report.hpp"
#include "rewrite/engine.hpp"
#include "rewrite/parser.hpp"
#include "sequences/instrumented.hpp"
#include "stllint/stllint.hpp"
#include "telemetry/live.hpp"

namespace {

using namespace cgp;

std::vector<int> random_ints(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(0, 1 << 30);
  std::vector<int> v(n);
  for (int& x : v) x = dist(rng);
  return v;
}

// --- benchmark registry -----------------------------------------------------

perf::bench_registry build_registry() {
  perf::bench_registry reg;

  // Concept-dispatched introsort: ComplexityO(n log n) comparisons.
  reg.add({.name = "sequences.sort",
           .subsystem = "sequences",
           .declared = core::big_o::power("n", 1, 1),
           .sizes = {512, 1024, 2048, 4096, 8192},
           .counter_prefix = "sequences.sort.comparisons",
           .setup = [](std::size_t n) -> std::function<void()> {
             auto input = random_ints(n, static_cast<std::uint32_t>(n));
             return [input] {
               auto v = input;
               (void)sequences::instrumented::sort(v.begin(), v.end());
             };
           }});

  // Buffered mergesort: also O(n log n), strictly stable.
  reg.add({.name = "sequences.stable_sort",
           .subsystem = "sequences",
           .declared = core::big_o::power("n", 1, 1),
           .sizes = {512, 1024, 2048, 4096, 8192},
           .counter_prefix = "sequences.stable_sort.comparisons",
           .setup = [](std::size_t n) -> std::function<void()> {
             auto input = random_ints(n, static_cast<std::uint32_t>(n) + 7);
             return [input] {
               auto v = input;
               (void)sequences::instrumented::stable_sort(v.begin(), v.end());
             };
           }});

  // Binary search on a random-access range: O(log n) comparisons.
  reg.add({.name = "sequences.lower_bound",
           .subsystem = "sequences",
           .declared = core::big_o::log_n(),
           .sizes = {1024, 4096, 16384, 65536, 262144},
           .counter_prefix = "sequences.lower_bound.comparisons",
           .setup = [](std::size_t n) -> std::function<void()> {
             std::vector<int> sorted(n);
             std::iota(sorted.begin(), sorted.end(), 0);
             auto key = std::make_shared<std::size_t>(0);
             return [sorted, key, n] {
               *key = (*key * 2654435761u + 1) % n;
               (void)sequences::instrumented::lower_bound_count(
                   sorted.begin(), sorted.end(), static_cast<int>(*key));
             };
           }});

  // Fixpoint simplification of an n-term identity chain.  The bottom-up
  // pass collapses every `+ 0` in one sweep, so the measured cost is
  // linear in the chain length — declared O(n), which the fit enforces
  // (a rule change that reintroduces per-pass rescans would show up as a
  // violated verdict here).
  reg.add({.name = "rewrite.simplifier",
           .subsystem = "rewrite",
           .declared = core::big_o::n(),
           .sizes = {8, 16, 32, 64, 128},
           .counter_prefix = "rewrite.simplifier.",
           .setup = [](std::size_t n) -> std::function<void()> {
             std::string src = "x";
             for (std::size_t i = 0; i < n; ++i) src = "(" + src + " + 0)";
             auto e = std::make_shared<rewrite::expr>(
                 rewrite::parse_expr(src, {{"x", "int"}}));
             auto simp = std::make_shared<rewrite::simplifier>();
             simp->add_default_concept_rules();
             simp->enable_constant_folding();
             return [e, simp] { (void)simp->simplify(*e); };
           }});

  // STLlint fixpoint analysis over n generated functions: linear in the
  // amount of code.
  reg.add({.name = "stllint.analyzer",
           .subsystem = "stllint",
           .declared = core::big_o::n(),
           .sizes = {4, 8, 16, 32, 64},
           .counter_prefix = "stllint.analyzer.",
           .setup = [](std::size_t n) -> std::function<void()> {
             std::ostringstream src;
             for (std::size_t i = 0; i < n; ++i)
               src << "void f" << i << "(vector<int>& v) {\n"
                   << "  int i = 0;\n"
                   << "  while (i < 10) {\n"
                   << "    v.push_back(i);\n"
                   << "    i = i + 1;\n"
                   << "  }\n"
                   << "}\n";
             auto source = std::make_shared<std::string>(src.str());
             return [source] { (void)stllint::lint_source(*source); };
           }});

  // Thread pool fan-out: n chunks cost n submitted + n completed tasks.
  // The pool itself is constructed in setup, outside the timed region.
  reg.add({.name = "parallel.thread_pool",
           .subsystem = "parallel",
           .declared = core::big_o::n(),
           .sizes = {8, 16, 32, 64, 128},
           .counter_prefix = "parallel.thread_pool.tasks",
           .setup = [](std::size_t n) -> std::function<void()> {
             auto pool = std::make_shared<parallel::thread_pool>(2);
             return [pool, n] {
               pool->run_chunks(n, [](std::size_t c) {
                 volatile std::size_t sink = 0;
                 for (std::size_t i = 0; i < 64; ++i) sink = sink + c;
               });
             };
           }});

  // The same fan-out with the live sampler streaming in the background:
  // the pair quantifies continuous observation's cost on the hottest
  // concurrent path.  Same declared bound, same deterministic task
  // counters; the sampler_overhead gate below compares the two sweeps'
  // wall times and trips when sampling costs more than its budget.
  reg.add({.name = "parallel.thread_pool.sampled",
           .subsystem = "parallel",
           .declared = core::big_o::n(),
           .sizes = {8, 16, 32, 64, 128},
           .counter_prefix = "parallel.thread_pool.tasks",
           .setup = [](std::size_t n) -> std::function<void()> {
             auto pool = std::make_shared<parallel::thread_pool>(2);
             auto sampler = std::make_shared<telemetry::live::sampler>(
                 telemetry::live::sample_options{.period_ms = 25,
                                                 .capacity = 256,
                                                 .watch = true});
             sampler->start();
             return [pool, sampler, n] {
               pool->run_chunks(n, [](std::size_t c) {
                 volatile std::size_t sink = 0;
                 for (std::size_t i = 0; i < 64; ++i) sink = sink + c;
               });
             };
           }});

  // Echo wave (PIF) on a ring under the deterministic simulator: two
  // messages per edge, and a ring has n edges.
  reg.add({.name = "distributed.sim_transport",
           .subsystem = "distributed",
           .declared = core::big_o::n(),
           .sizes = {8, 16, 32, 64, 128},
           .counter_prefix = "distributed.network.messages",
           .setup = [](std::size_t n) -> std::function<void()> {
             return [n] {
               distributed::sim_transport net(
                   {.nodes = n, .topo = distributed::topology::ring});
               net.spawn(distributed::echo_wave(0));
               (void)net.run();
             };
           }});

  // The same wave on a complete topology via the thread-pool backend:
  // message count is edge count, i.e. quadratic in nodes.
  reg.add({.name = "distributed.parallel_transport",
           .subsystem = "distributed",
           .declared = core::big_o::power("n", 2, 0),
           .sizes = {4, 8, 16, 32},
           .counter_prefix = "distributed.network.messages",
           .setup = [](std::size_t n) -> std::function<void()> {
             return [n] {
               distributed::parallel_transport net(
                   {.nodes = n,
                    .topo = distributed::topology::complete,
                    .workers = 2});
               net.spawn(distributed::echo_wave(0));
               (void)net.run();
             };
           }});

  // BFS over a ring: O(V + E) = O(n) relaxations.
  reg.add({.name = "graph.bfs",
           .subsystem = "graph",
           .declared = core::big_o::n(),
           .sizes = {256, 512, 1024, 2048, 4096},
           .counter_prefix = "graph.bfs.operations",
           .setup = [](std::size_t n) -> std::function<void()> {
             auto g = std::make_shared<graph::adjacency_list<double>>(n);
             for (std::size_t i = 0; i < n; ++i)
               g->add_edge(i, (i + 1) % n, 1.0);
             return [g] { (void)graph::instrumented::bfs_distances(*g, 0); };
           }});

  return reg;
}

// --- CLI --------------------------------------------------------------------

struct options {
  std::string out = "BENCH_perf.json";
  std::string baseline;
  std::string write_baseline;
  std::string plant;
  double time_tolerance = 4.0;
  bool gate_time = true;
  bool quick = false;
  bool list = false;
};

bool parse_args(int argc, char** argv, options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--out") {
      const char* v = next();
      if (!v) return false;
      o.out = v;
    } else if (a == "--baseline") {
      const char* v = next();
      if (!v) return false;
      o.baseline = v;
    } else if (a == "--write-baseline") {
      const char* v = next();
      if (!v) return false;
      o.write_baseline = v;
    } else if (a == "--plant-regression") {
      const char* v = next();
      if (!v) return false;
      o.plant = v;
    } else if (a == "--time-tolerance") {
      const char* v = next();
      if (!v) return false;
      o.time_tolerance = std::stod(v);
    } else if (a == "--no-gate-time") {
      o.gate_time = false;
    } else if (a == "--quick") {
      o.quick = true;
    } else if (a == "--list") {
      o.list = true;
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return false;
    }
  }
  return true;
}

// --- sampler overhead gate --------------------------------------------------

// Background sampling must stay within a 10% tax on the thread pool.
constexpr double kSamplerOverheadBudget = 1.10;

struct overhead_verdict {
  bool present = false;  ///< both sweeps found
  bool ok = true;
  telemetry::json_value block;  ///< the "sampler_overhead" report object
};

// Compares the sampled and unsampled thread-pool sweeps point by point.
// Wall time is noisy, so a single slow point must not trip the gate: a
// point counts as over budget only when the sampled run's entire bootstrap
// CI clears budget * the unsampled median, and the gate fails only when at
// least half the sweep points are over.
overhead_verdict gate_sampler_overhead(
    const std::vector<perf::benchmark_result>& results) {
  overhead_verdict v;
  const perf::benchmark_result* plain = nullptr;
  const perf::benchmark_result* sampled = nullptr;
  for (const auto& r : results) {
    if (r.name == "parallel.thread_pool") plain = &r;
    if (r.name == "parallel.thread_pool.sampled") sampled = &r;
  }
  if (!plain || !sampled || plain->sweep.size() != sampled->sweep.size())
    return v;
  v.present = true;

  const auto num = [](double x) {
    telemetry::json_value j;
    j.k = telemetry::json_value::kind::number;
    j.num = x;
    return j;
  };
  v.block.k = telemetry::json_value::kind::object;
  v.block.obj["budget_ratio"] = num(kSamplerOverheadBudget);
  telemetry::json_value pts;
  pts.k = telemetry::json_value::kind::array;
  std::size_t over = 0;
  for (std::size_t i = 0; i < plain->sweep.size(); ++i) {
    const auto& p = plain->sweep[i];
    const auto& s = sampled->sweep[i];
    const double ratio =
        p.time_ns.median > 0.0 ? s.time_ns.median / p.time_ns.median : 0.0;
    const bool tripped =
        p.time_ns.median > 0.0 &&
        s.time_ns.ci.lo > p.time_ns.median * kSamplerOverheadBudget;
    if (tripped) ++over;
    telemetry::json_value pt;
    pt.k = telemetry::json_value::kind::object;
    pt.obj["n"] = num(static_cast<double>(p.n));
    pt.obj["unsampled_median_ns"] = num(p.time_ns.median);
    pt.obj["sampled_median_ns"] = num(s.time_ns.median);
    pt.obj["sampled_ci_lo_ns"] = num(s.time_ns.ci.lo);
    pt.obj["ratio"] = num(ratio);
    telemetry::json_value t;
    t.k = telemetry::json_value::kind::boolean;
    t.b = tripped;
    pt.obj["over_budget"] = std::move(t);
    pts.arr.push_back(std::move(pt));
  }
  v.ok = over < (plain->sweep.size() + 1) / 2;
  v.block.obj["points"] = std::move(pts);
  v.block.obj["points_over_budget"] = num(static_cast<double>(over));
  telemetry::json_value ok;
  ok.k = telemetry::json_value::kind::boolean;
  ok.b = v.ok;
  v.block.obj["ok"] = std::move(ok);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  options opt;
  if (!parse_args(argc, argv, opt)) return 3;

  perf::bench_registry registry = build_registry();
  if (opt.list) {
    for (const auto& def : registry.all())
      std::cout << def.name << " (" << def.declared.to_string() << ")\n";
    return 0;
  }

  // Self-test hook: make one benchmark genuinely more expensive — the
  // workload runs 6x per invocation, so its deterministic per-iteration
  // counters (and its time) inflate 6x and the baseline gate must trip.
  if (!opt.plant.empty()) {
    perf::bench_registry planted;
    bool found = false;
    for (auto def : registry.all()) {
      if (def.name == opt.plant) {
        found = true;
        auto inner = def.setup;
        def.setup = [inner](std::size_t n) -> std::function<void()> {
          auto workload = inner(n);
          return [workload] {
            for (int i = 0; i < 6; ++i) workload();
          };
        };
      }
      planted.add(std::move(def));
    }
    if (!found) {
      std::cerr << "--plant-regression: no benchmark named " << opt.plant
                << "\n";
      return 3;
    }
    registry = std::move(planted);
  }

  // Quick mode keeps the n-sweeps identical (counters must match the
  // baseline exactly) and only shrinks the timing batches.
  perf::timing_options topts;
  if (opt.quick) {
    topts.min_sample_ns = 200'000;
    topts.repeats = 5;
  }

  const std::uint64_t seed = check::default_seed();
  std::cout << check::seed_banner() << "\n";

  const auto results = perf::run_all(registry, topts, seed);
  const auto env = perf::env_info(perf::utc_timestamp());
  auto doc = perf::report_json(results, env);
  const auto overhead = gate_sampler_overhead(results);
  if (overhead.present) doc.obj["sampler_overhead"] = overhead.block;
  const std::string rendered = telemetry::dump_json(doc);

  for (const std::string& path : {opt.out, opt.write_baseline}) {
    if (path.empty()) continue;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return 3;
    }
    out << rendered << "\n";
  }

  bool fit_failed = false;
  for (const auto& r : results) {
    std::cout << r.name << ": declared " << r.declared << ", fitted n^"
              << r.fit.exponent << " on " << r.fitted_on << " -> "
              << perf::to_string(r.fit.v) << "\n";
    if (r.fit.v != perf::verdict::consistent) fit_failed = true;
  }
  std::cout << results.size() << " benchmarks -> " << opt.out << " ("
            << env.to_string() << ")\n";

  int rc = 0;
  if (!opt.baseline.empty()) {
    std::ifstream in(opt.baseline);
    if (!in) {
      std::cerr << "cannot read baseline " << opt.baseline << "\n";
      return 3;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    telemetry::json_value base;
    try {
      base = telemetry::parse_json(buf.str());
    } catch (const telemetry::json_error& e) {
      std::cerr << "baseline is not valid JSON: " << e.what() << "\n";
      return 3;
    }
    const perf::gate_options gate{.counter_ratio = 1.30,
                                  .time_ratio = opt.time_tolerance,
                                  .gate_time = opt.gate_time};
    const auto regressions = perf::compare_reports(doc, base, gate);
    for (const auto& r : regressions)
      std::cerr << "REGRESSION [" << r.what << "] " << r.benchmark << ": "
                << r.detail << "\n";
    if (!regressions.empty()) rc = 1;
    else std::cout << "baseline gate: ok (" << opt.baseline << ")\n";
  }

  if (fit_failed) {
    std::cerr << "a complexity fit is not consistent with its declared "
                 "bound\n";
    rc = rc == 0 ? 2 : rc;
  }

  if (overhead.present) {
    if (overhead.ok) {
      std::cout << "sampler overhead gate: ok (budget "
                << kSamplerOverheadBudget << "x)\n";
    } else {
      std::cerr << "sampler overhead gate: background sampling costs more "
                   "than "
                << kSamplerOverheadBudget
                << "x the unsampled thread pool at half or more sweep "
                   "points\n";
      rc = rc == 0 ? 4 : rc;
    }
  }
  return rc;
}
