// Fig. 5 reproduction: the concept-based rewrite table.
//
//  * Correctness shape: 2 generic concept-guarded rules fire on all 10
//    enumerated per-type instances (the report prints the table).
//  * Scaling shape: a traditional simplifier needs O(#types x #ops) rules;
//    the concept-based one needs O(#axioms) — new types join by declaring a
//    model, with no new rules ("optimization ... comes essentially for
//    free").
//  * Throughput: simplification cost with generic vs enumerated rules, and
//    the evaluation speedup of simplified expressions.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "rewrite/engine.hpp"
#include "rewrite/eval.hpp"

namespace {

using cgp::rewrite::expr;
using E = expr;

cgp::rewrite::simplifier generic_simplifier() {
  cgp::rewrite::simplifier s;
  s.add_concept_rule({"Monoid", "right_identity"});
  s.add_concept_rule({"Group", "right_inverse"});
  s.add_expr_rule(cgp::rewrite::reciprocal_normalization_rule("double"));
  return s;
}

cgp::rewrite::simplifier enumerated_simplifier() {
  cgp::rewrite::simplifier s;
  for (auto& r : cgp::rewrite::fig5_instance_rules()) s.add_expr_rule(r);
  return s;
}

std::vector<expr> fig5_inputs() {
  const E i = E::var("i", "int");
  const E f = E::var("f", "double");
  const E b = E::var("b", "bool");
  const E u = E::var("u", "unsigned");
  const E s = E::var("s", "string");
  const E A = E::var("A", "matrix");
  const E r = E::var("r", "rational");
  return {
      E::binary_op("*", i, E::int_lit(1)),
      E::binary_op("*", f, E::double_lit(1.0)),
      E::binary_op("&&", b, E::bool_lit(true)),
      E::binary_op("&", u, E::uint_lit(0xFFFFFFFFull)),
      E::call_fn("concat", {s, E::string_lit("")}, "string"),
      E::call_fn("matmul", {A, E::constant("I", "matrix")}, "matrix"),
      E::binary_op("+", i, E::unary_op("-", i)),
      E::binary_op("*", f, E::binary_op("/", E::double_lit(1.0), f)),
      E::binary_op("*", r, E::call_fn("reciprocal", {r}, "rational")),
      E::call_fn("matmul", {A, E::call_fn("inverse", {A}, "matrix")},
                 "matrix"),
  };
}

/// A deep expression with plenty of identities to fold, for throughput.
expr deep_expression(int depth) {
  E e = E::var("i", "int");
  for (int k = 0; k < depth; ++k) {
    e = E::binary_op("*", E::binary_op("+", e, E::int_lit(0)), E::int_lit(1));
    e = E::binary_op("+", e,
                     E::binary_op("+", E::var("j", "int"),
                                  E::unary_op("-", E::var("j", "int"))));
  }
  return e;
}

void bm_simplify_generic_rules(benchmark::State& state) {
  const auto s = generic_simplifier();
  const expr e = deep_expression(static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(s.simplify(e));
}
BENCHMARK(bm_simplify_generic_rules)->Arg(4)->Arg(16)->Arg(64);

void bm_simplify_enumerated_rules(benchmark::State& state) {
  // The instance-rule baseline only covers int/double/... patterns; on the
  // same input it must do the same folds.
  cgp::rewrite::simplifier s = enumerated_simplifier();
  s.add_expr_rule({"i+0",
                   E::binary_op("+", E::meta("x", "int"), E::int_lit(0)),
                   E::meta("x", "int"),
                   "instance",
                   {}});
  const expr e = deep_expression(static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(s.simplify(e));
}
BENCHMARK(bm_simplify_enumerated_rules)->Arg(4)->Arg(16)->Arg(64);

void bm_eval_original(benchmark::State& state) {
  const expr e = deep_expression(16);
  const cgp::rewrite::environment env{{"i", std::int64_t{3}},
                                      {"j", std::int64_t{5}}};
  for (auto _ : state)
    benchmark::DoNotOptimize(cgp::rewrite::evaluate(e, env));
}
BENCHMARK(bm_eval_original);

void bm_eval_simplified(benchmark::State& state) {
  const expr e = generic_simplifier().simplify(deep_expression(16));
  const cgp::rewrite::environment env{{"i", std::int64_t{3}},
                                      {"j", std::int64_t{5}}};
  for (auto _ : state)
    benchmark::DoNotOptimize(cgp::rewrite::evaluate(e, env));
}
BENCHMARK(bm_eval_simplified);

void report() {
  std::printf("================================================================\n");
  std::printf("Fig. 5: concept-based rewrite rules\n");
  std::printf("================================================================\n");
  const auto s = generic_simplifier();
  const cgp::rewrite::cost_model cm;
  std::printf("%-36s %-16s %-28s %9s\n", "instance", "result",
              "fired rule (concept-guarded)", "cost");
  std::size_t covered = 0;
  const auto inputs = fig5_inputs();
  for (const expr& e : inputs) {
    std::vector<cgp::rewrite::rewrite_step> trace;
    const expr out = s.simplify(e, &trace);
    if (out != e) ++covered;
    std::printf("%-36s %-16s %-28s %4.0f->%3.0f\n", e.to_string().c_str(),
                out.to_string().c_str(),
                trace.empty() ? "-" : trace.back().rule.c_str(), cm.total(e),
                cm.total(out));
  }
  std::printf("\n%zu/%zu instances covered by %zu generic rules "
              "(traditional simplifier: %zu enumerated rules)\n",
              covered, inputs.size(), s.concept_rule_count(),
              cgp::rewrite::fig5_instance_rules().size());

  // Advantage 1 of the paper: new model => new instances for free.
  cgp::core::concept_registry reg;
  cgp::core::register_builtin_concepts(reg);
  reg.declare_model(
      {"Monoid", {"duration", "+"}, {{"op", "+"}, {"e", "0"}}});
  cgp::rewrite::simplifier s2(reg);
  s2.add_default_concept_rules();
  const expr d = E::binary_op("+", E::var("t", "duration"),
                              cgp::rewrite::parse_literal("0", "duration")
                                  .value());
  std::printf("\nextensibility: after declaring (duration,+) a Monoid, "
              "%s -> %s with NO new rule\n",
              d.to_string().c_str(), s2.simplify(d).to_string().c_str());

  std::printf("\nrule-count scaling: enumerated = #types x #ops instances; "
              "concept-based = #axioms.\n");
  std::printf("guarded soundness: every rewrite is licensed by a declared "
              "model whose axioms the\nproof module can check "
              "(see fig6_proof and tests/proof_test.cpp).\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
