// Trace exporter and self-check: drives one causally-linked trace through
// every propagation boundary the tracing layer covers — a PageRank-style
// synchronous distributed run (context rides the message envelope across
// ranks), a thread-pool fan-out (context is captured at submit and restored
// in the workers), an STLlint session (diagnostics become instant events
// with provenance), and a rewrite session (each derivation step becomes an
// instant event) — then writes Chrome trace-event JSON to trace.json
// (argv[1] overrides), re-parses it with the bundled JSON parser, and
// validates it.
//
// Exit status is the contract CI gates on: non-zero when the trace is
// unbalanced, orphaned, or out of parent scope, when the causal tree fails
// to span at least two ranks and two worker threads, or when events were
// dropped.  Open the written file in ui.perfetto.dev to see the tree.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <latch>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "distributed/inproc_transport.hpp"
#include "distributed/parallel_transport.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/env_info.hpp"
#include "rewrite/engine.hpp"
#include "rewrite/parser.hpp"
#include "stllint/stllint.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace cgp;

// A PageRank-style value-diffusion process: every node starts with rank
// 1.0 (fixed-point micro-units), and for kRounds supersteps sends
// 0.85 * rank / degree to each neighbor and recomputes its rank as
// 0.15 + sum of received shares.  Quiesces by simply not sending.
class pagerank_process : public distributed::process {
 public:
  static constexpr std::size_t kRounds = 5;
  static constexpr long kScale = 1'000'000;

  void start(distributed::context& ctx) override {
    rank_ = kScale;
    send_shares(ctx);
  }

  void receive(distributed::context& ctx, const distributed::message& m) override {
    (void)ctx;
    acc_ += m.payload.at(0);
  }

  void on_round(distributed::context& ctx) override {
    if (done_) return;
    rank_ = kScale * 15 / 100 + acc_;
    acc_ = 0;
    if (ctx.round() < kRounds) {
      send_shares(ctx);
    } else {
      ctx.decide("pagerank", rank_);
      done_ = true;
    }
  }

 private:
  void send_shares(distributed::context& ctx) {
    const auto& nbrs = ctx.neighbors();
    if (nbrs.empty()) return;
    const long share = rank_ * 85 / 100 / static_cast<long>(nbrs.size());
    for (int n : nbrs) ctx.send(n, "share", {share});
    ctx.charge(nbrs.size());
  }

  long rank_ = kScale;
  long acc_ = 0;
  bool done_ = false;
};

// Drives the same PageRank run on all three Transport backends under one
// parent: the sim, parallel, and inproc runs must all join the causal
// tree (the threaded backends' workers adopt the phase context, so their
// per-node spans hang off the same root).
void drive_distributed() {
  telemetry::trace::child_span span("bench.pagerank", "bench");
  {
    distributed::sim_transport net({.nodes = 8});
    net.spawn([](int) { return std::make_unique<pagerank_process>(); });
    const auto stats = net.run(32);
    span.arg("rounds", std::to_string(stats.rounds));
    span.arg("messages", std::to_string(stats.messages_total));
  }
  {
    distributed::parallel_transport net({.nodes = 8});
    net.spawn([](int) { return std::make_unique<pagerank_process>(); });
    (void)net.run(32);
  }
  {
    distributed::inproc_transport net({.nodes = 8, .workers = 2});
    net.spawn([](int) { return std::make_unique<pagerank_process>(); });
    (void)net.run(32);
  }
}

void drive_thread_pool() {
  telemetry::trace::child_span span("bench.pool_fanout", "bench");
  parallel::thread_pool pool(4);
  constexpr std::ptrdiff_t kTasks = 4;
  // All tasks rendezvous at the latch, forcing them onto distinct workers:
  // the exported trace must show task spans on at least two tids.
  std::latch rendezvous(kTasks);
  std::latch finished(kTasks);
  for (std::ptrdiff_t i = 0; i < kTasks; ++i)
    pool.submit([&rendezvous, &finished] {
      rendezvous.arrive_and_wait();
      finished.count_down();
    });
  finished.wait();
  // A blocking fan-out too, so run_chunks shows up parenting its chunks.
  pool.run_chunks(8, [](std::size_t) {});
}

void drive_stllint() {
  telemetry::trace::child_span span("bench.stllint", "bench");
  (void)stllint::lint_source(R"(
void f(vector<int>& v) {
  vector<int>::iterator it = v.begin();
  v.push_back(1);
  use(*it);
}
)");
}

void drive_rewrite() {
  telemetry::trace::child_span span("bench.rewrite", "bench");
  rewrite::simplifier simp;
  simp.add_default_concept_rules();
  simp.enable_constant_folding();
  const std::map<std::string, std::string> types = {{"x", "int"},
                                                    {"y", "double"}};
  for (const char* src : {"(x + 0) * 1", "x + (-x)", "(y * 1.0) + 0.0",
                          "2 * 3 + x * 0"})
    (void)simp.simplify(rewrite::parse_expr(src, types));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "trace.json";
  auto& sink = telemetry::trace::sink::global();
  sink.clear();

  {
    // One root: everything below joins this causal tree.  After each
    // phase, the registry counters that phase moved are sampled as
    // Perfetto counter tracks, so the metric trajectory and the span tree
    // share one timeline.
    telemetry::trace::trace_span root("bench.trace_export", "bench");
    drive_distributed();
    telemetry::trace::sample_registry_counters("distributed.network.");
    drive_thread_pool();
    telemetry::trace::sample_registry_counters("parallel.thread_pool.tasks");
    drive_stllint();
    telemetry::trace::sample_registry_counters("stllint.analyzer.");
    drive_rewrite();
    telemetry::trace::sample_registry_counters("rewrite.simplifier.");
  }

  const std::string json = sink.export_chrome_trace();
  {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::cerr << "trace_export: cannot write " << path << "\n";
      return 2;
    }
    out << json << "\n";
  }

  // Re-parse what we wrote and validate the structure; the exporter is not
  // trusted to check itself in-memory.
  telemetry::json_value doc;
  try {
    std::ifstream in(path, std::ios::binary);
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    doc = telemetry::parse_json(text);
  } catch (const telemetry::json_error& e) {
    std::cerr << "trace_export: re-parse failed: " << e.what() << "\n";
    return 3;
  }

  // Stamp the shared environment block into otherData and rewrite the
  // file, so the uploaded trace records what produced it.
  doc.obj["otherData"].obj["environment"] =
      cgp::perf::env_info(cgp::perf::utc_timestamp()).to_json();
  {
    std::ofstream out(path, std::ios::binary);
    out << telemetry::dump_json(doc) << "\n";
  }

  const auto v = telemetry::trace::validate_chrome_trace(doc);
  std::cout << "trace_export: wrote " << path << "\n"
            << "  spans=" << v.spans << " instants=" << v.instants
            << " counters=" << v.counters << " flows=" << v.flows
            << " ranks=" << v.ranks << " threads=" << v.threads
            << " roots=" << v.roots << " traces=" << v.traces
            << " dropped=" << sink.dropped() << "\n";
  if (!v.ok) {
    std::cerr << "trace_export: INVALID trace:\n" << v.error_text();
    return 4;
  }
  if (v.traces != 1 || v.roots != 1) {
    std::cerr << "trace_export: expected one causal tree, got " << v.traces
              << " trace(s) / " << v.roots << " root(s)\n";
    return 5;
  }
  if (v.ranks < 2) {
    std::cerr << "trace_export: causal tree spans only " << v.ranks
              << " rank(s); need >= 2\n";
    return 6;
  }
  // All three Transport backends must have contributed a run span to the
  // one causal tree (the traces==1 check above already proved nothing
  // forked off into a separate trace).
  std::size_t backend_runs = 0;
  for (const auto& ev : doc.at("traceEvents").arr)
    if (ev.at("ph").str == "B" &&
        ev.at("name").str == "distributed.network.run")
      ++backend_runs;
  if (backend_runs != 3) {
    std::cerr << "trace_export: expected 3 distributed.network.run spans "
                 "(sim + parallel + inproc), got "
              << backend_runs << "\n";
    return 9;
  }
  // Worker coverage: the pool task spans specifically must land on at
  // least two distinct tids (the latch in drive_thread_pool forces this).
  std::set<double> task_tids;
  for (const auto& ev : doc.at("traceEvents").arr)
    if (ev.at("ph").str == "B" &&
        ev.at("name").str == "parallel.thread_pool.task")
      task_tids.insert(ev.at("tid").num);
  if (task_tids.size() < 2) {
    std::cerr << "trace_export: pool task spans on " << task_tids.size()
              << " thread(s); need >= 2\n";
    return 7;
  }
  if (sink.dropped() != 0 ||
      doc.at("otherData").at("dropped_events").num != 0.0) {
    std::cerr << "trace_export: " << sink.dropped() << " events dropped\n";
    return 8;
  }
  // Every drive phase sampled its registry counters as counter tracks;
  // at least the distributed message counters must have shown up.
  if (v.counters < 4) {
    std::cerr << "trace_export: only " << v.counters
              << " counter-track sample(s); need >= 4\n";
    return 10;
  }
  std::cout << "trace_export: OK (open " << path << " in ui.perfetto.dev)\n";
  return 0;
}
