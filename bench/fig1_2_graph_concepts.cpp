// Figs. 1-2 reproduction: the Graph Edge / Incidence Graph concepts as
// first-class entities, plus the zero-overhead claim — accessing a graph
// through the concept interface costs the same as hand-written loops.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "core/registry.hpp"
#include "graph/algorithms.hpp"

namespace {

using cgp::graph::adjacency_list;
using cgp::graph::edge;

adjacency_list<double> make_graph(std::size_t n, std::size_t out_deg) {
  adjacency_list<double> g(n);
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  for (std::size_t v = 0; v < n; ++v)
    for (std::size_t k = 0; k < out_deg; ++k)
      g.add_edge(v, pick(rng), 1.0);
  return g;
}

/// Traversal through the Fig. 2 concept interface (out_edges/target).
template <cgp::core::IncidenceGraph G>
std::size_t concept_traversal(const G& g, std::size_t n) {
  std::size_t acc = 0;
  for (std::size_t v = 0; v < n; ++v) {
    auto [first, last] = out_edges(v, g);
    for (; first != last; ++first) acc += target(*first);
  }
  return acc;
}

void bm_concept_interface_traversal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = make_graph(n, 8);
  for (auto _ : state)
    benchmark::DoNotOptimize(concept_traversal(g, n));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 8);
}
BENCHMARK(bm_concept_interface_traversal)->Arg(1024)->Arg(16384);

void bm_direct_vector_traversal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = make_graph(n, 8);
  for (auto _ : state) {
    std::size_t acc = 0;
    for (std::size_t v = 0; v < n; ++v)
      for (const auto& e : g.out_edges_of(v)) acc += e.dst;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 8);
}
BENCHMARK(bm_direct_vector_traversal)->Arg(1024)->Arg(16384);

void bm_first_neighbor(benchmark::State& state) {
  const auto g = make_graph(4096, 8);
  std::size_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cgp::graph::first_neighbor(g, v));
    v = (v + 1) % 4096;
  }
}
BENCHMARK(bm_first_neighbor);

void bm_bfs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = make_graph(n, 8);
  for (auto _ : state)
    benchmark::DoNotOptimize(cgp::graph::bfs_distances(g, 0));
}
BENCHMARK(bm_bfs)->Arg(1024)->Arg(16384);

void bm_dijkstra(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = make_graph(n, 8);
  for (auto _ : state)
    benchmark::DoNotOptimize(cgp::graph::dijkstra_shortest_paths(
        g, 0, [](const edge<double>& e) { return e.property; }));
}
BENCHMARK(bm_dijkstra)->Arg(1024)->Arg(16384);

void report() {
  std::printf("================================================================\n");
  std::printf("Figs. 1-2: graph concepts as first-class entities\n");
  std::printf("================================================================\n");
  const auto& reg = cgp::core::concept_registry::global();
  std::printf("%s\n", reg.describe("GraphEdge").c_str());
  std::printf("%s\n", reg.describe("IncidenceGraph").c_str());
  std::printf("%s\n", reg.describe("VertexListGraph").c_str());
  static_assert(cgp::core::GraphEdge<edge<double>>);
  static_assert(cgp::core::IncidenceGraph<adjacency_list<double>>);
  std::printf("static checks: adjacency_list models IncidenceGraph; its edge "
              "models GraphEdge\n");
  std::printf("\nSection 2.3 constraint-propagation accounting:\n");
  std::printf("  first_neighbor with first-class concepts : 1 constraint, "
              "1 type parameter\n");
  std::printf("  paper's emulation without associated types: 3 constraints, "
              "4 type parameters\n");
  std::printf("\nbenchmarks compare concept-interface traversal vs "
              "hand-written loops (expect parity):\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
