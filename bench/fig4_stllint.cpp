// Fig. 4 reproduction: STLlint statically detects the iterator-invalidation
// bug in the failing-grades program and prints the paper's warning; plus
// analysis-throughput scaling (high-level analysis is cheap because it
// ignores implementations).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "stllint/stllint.hpp"

namespace {

constexpr const char* kFig4 = R"(
vector<student_info> extract_fails(vector<student_info>& students) {
  vector<student_info> fail;
  vector<student_info>::iterator iter = students.begin();
  while (iter != students.end()) {
    if (fgrade(*iter)) {
      fail.push_back(*iter);
      students.erase(iter);
    } else
      ++iter;
  }
  return fail;
}
)";

/// Synthesizes a program with `functions` clean iterator-loop functions —
/// the throughput workload.
std::string synthesize(std::size_t functions) {
  std::ostringstream out;
  for (std::size_t f = 0; f < functions; ++f) {
    out << "int work" << f << "(vector<int>& v, list<int>& l) {\n"
        << "  int total = 0;\n"
        << "  sort(v.begin(), v.end());\n"
        << "  vector<int>::iterator it = v.begin();\n"
        << "  while (it != v.end()) {\n"
        << "    total = total + use(*it);\n"
        << "    ++it;\n"
        << "  }\n"
        << "  for (list<int>::iterator j = l.begin(); j != l.end(); ++j) {\n"
        << "    touch(*j);\n"
        << "  }\n"
        << "  bool found = binary_search(v.begin(), v.end(), total);\n"
        << "  return total;\n"
        << "}\n";
  }
  return out.str();
}

void bm_lint_fig4(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(cgp::stllint::lint_source(kFig4));
}
BENCHMARK(bm_lint_fig4);

void bm_lint_throughput(benchmark::State& state) {
  const std::string source =
      synthesize(static_cast<std::size_t>(state.range(0)));
  std::size_t statements = 0;
  for (auto _ : state) {
    const auto r = cgp::stllint::lint_source(source);
    statements = r.stats.statements;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(statements));
  state.counters["statements"] = static_cast<double>(statements);
}
BENCHMARK(bm_lint_throughput)->Arg(1)->Arg(10)->Arg(100)->Arg(500);

void report() {
  std::printf("================================================================\n");
  std::printf("Fig. 4: STLlint on the failing-grades program\n");
  std::printf("================================================================\n");
  std::printf("input program:%s\n", kFig4);
  const auto result = cgp::stllint::lint_source(kFig4);
  std::printf("STLlint output (paper: \"Warning: attempt to dereference a "
              "singular iterator\"), caret-rendered with the symbolic-\n"
              "execution provenance that led the analyzer there:\n\n");
  for (const auto& d : result.diags)
    std::printf("%s\n", cgp::stllint::render_caret(d).c_str());
  std::printf("\nfixed variant (iter = students.erase(iter)) is clean: %s\n",
              cgp::stllint::lint_source(
                  "vector<student_info> f(vector<student_info>& students) {\n"
                  "  vector<student_info> fail;\n"
                  "  vector<student_info>::iterator iter = students.begin();\n"
                  "  while (iter != students.end()) {\n"
                  "    if (fgrade(*iter)) {\n"
                  "      fail.push_back(*iter);\n"
                  "      iter = students.erase(iter);\n"
                  "    } else\n"
                  "      ++iter;\n"
                  "  }\n"
                  "  return fail;\n"
                  "}\n")
                      .clean()
                  ? "yes"
                  : "NO (regression!)");
  std::printf("\nthroughput benchmarks: analysis time vs program size "
              "(expect ~linear):\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
