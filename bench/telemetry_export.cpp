// Telemetry emitter: runs a representative workload through every
// instrumented subsystem, performs the empirical performance-concept
// checks, and prints the unified registry — JSON by default (one machine-
// consumable object, parseable back via telemetry::parse_json), or the
// one-line-per-metric text form with --text.
//
// This is the measurement entry point the ROADMAP's "make a hot path
// measurably faster" work items start from: run it before and after a
// change and diff the counters.
#include <cstring>
#include <iostream>
#include <memory>
#include <numeric>
#include <random>
#include <vector>

#include "distributed/algorithms.hpp"
#include "distributed/network.hpp"
#include "graph/instrumented.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/env_info.hpp"
#include "rewrite/engine.hpp"
#include "rewrite/parser.hpp"
#include "sequences/instrumented.hpp"
#include "stllint/stllint.hpp"
#include "telemetry/complexity_check.hpp"

namespace {

using namespace cgp;

std::vector<int> random_ints(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(0, 1 << 30);
  std::vector<int> v(n);
  for (int& x : v) x = dist(rng);
  return v;
}

void drive_parallel() {
  parallel::thread_pool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 8; ++round)
    pool.run_chunks(32, [&sum](std::size_t c) {
      long local = 0;
      for (std::size_t i = 0; i < 1000; ++i)
        local += static_cast<long>(i * (c + 1));
      sum += local;
    });
}

void drive_distributed() {
  for (const std::size_t n : {16, 32, 64}) {
    distributed::sim_transport net({.nodes = n});
    net.spawn(distributed::lcr_leader_election());
    (void)net.run();
  }
}

void drive_rewrite() {
  rewrite::simplifier simp;
  simp.add_default_concept_rules();
  simp.enable_constant_folding();
  const std::map<std::string, std::string> types = {{"x", "int"},
                                                    {"y", "double"}};
  for (const char* src : {"(x + 0) * 1", "x + (-x)", "(y * 1.0) + 0.0",
                          "2 * 3 + x * 0", "-(-x) + 0"})
    (void)simp.simplify(rewrite::parse_expr(src, types));
}

void drive_stllint() {
  (void)stllint::lint_source(R"(
void f(vector<int>& v) {
  vector<int>::iterator it = v.begin();
  v.push_back(1);
  use(*it);
}
)");
  (void)stllint::lint_source(R"(
void g(vector<int>& v) {
  int i = 0;
  while (i < 10) {
    v.push_back(i);
    i = i + 1;
  }
}
)");
}

void drive_sequences_and_graph() {
  const std::vector<std::size_t> sizes = {512, 1024, 2048, 4096, 8192};
  const core::big_o nlogn = core::big_o::power("n", 1, 1);

  // Empirical check of the sort's declared ComplexityO(n log n).
  (void)telemetry::check_scaling("sequences.sort.comparisons", sizes, nlogn,
                                 [](std::size_t n) {
                                   auto v = random_ints(
                                       n, static_cast<std::uint32_t>(n));
                                   return sequences::instrumented::sort(
                                       v.begin(), v.end());
                                 });
  // BFS on rings: O(V + E) = O(n).
  (void)telemetry::check_scaling(
      "graph.bfs.operations", {256, 512, 1024, 2048}, core::big_o::n(),
      [](std::size_t n) {
        graph::adjacency_list<double> g(n);
        for (std::size_t i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n, 1.0);
        return graph::instrumented::bfs_distances(g, 0).second;
      });
  // Kruskal on random weights: O(E log E).
  graph::adjacency_list<double> g(64);
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> w(0.0, 1.0);
  for (std::size_t i = 0; i < 64; ++i)
    for (std::size_t j = i + 1; j < 64; j += 7) g.add_edge(i, j, w(rng));
  (void)graph::instrumented::kruskal_mst(g);
}

}  // namespace

int main(int argc, char** argv) {
  const bool text =
      argc > 1 && (std::strcmp(argv[1], "--text") == 0 ||
                   std::strcmp(argv[1], "-t") == 0);

  drive_parallel();
  drive_distributed();
  drive_rewrite();
  drive_stllint();
  drive_sequences_and_graph();

  auto& reg = telemetry::registry::global();
  const auto env = perf::env_info(perf::utc_timestamp());
  if (text) {
    // One header line, then the familiar line-per-metric form.
    std::cout << "# " << env.to_string() << "\n" << reg.export_text() << "\n";
  } else {
    // Wrap the registry with the shared environment block so the emitted
    // document records what produced it (same shape as BENCH_perf.json).
    std::cout << "{\"environment\":" << telemetry::dump_json(env.to_json())
              << ",\"telemetry\":" << reg.export_json() << "}\n";
  }

  // Exit non-zero when any recorded performance-concept check failed, so
  // CI can gate on "the measured complexity still matches the declared
  // concepts".
  for (const auto& report : reg.check_reports())
    if (!report.ok) {
      std::cerr << report.to_string() << "\n";
      return 1;
    }
  return 0;
}
