// Conformance report emitter: runs the property-based conformance suites
// (DESIGN.md §8) outside googletest and prints one line per suite, so CI
// can gate on the aggregate without parsing test output.
//
// Exit status:
//   0  every property held and every suite executed at least one case;
//   1  a property was falsified (the CGP_CHECK_SEED reproduction line is
//      printed) or a suite was vacuous (0 executed cases — a checker that
//      silently checks nothing is itself a conformance failure).
#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "check/axiom_bridge.hpp"
#include "check/expr_gen.hpp"
#include "check/laws.hpp"
#include "check/property.hpp"
#include "core/algebraic.hpp"
#include "core/registry.hpp"
#include "distributed/algorithms.hpp"
#include "distributed/network.hpp"
#include "distributed/parallel_transport.hpp"
#include "rewrite/engine.hpp"
#include "rewrite/eval.hpp"
#include "telemetry/telemetry.hpp"

namespace check = cgp::check;
namespace core = cgp::core;
namespace dist = cgp::distributed;
namespace rewrite = cgp::rewrite;

namespace {

struct tally {
  std::size_t suites = 0;
  std::size_t cases = 0;
  std::size_t failed = 0;
  std::size_t vacuous = 0;
};

void report(const std::string& group, const std::vector<check::result>& rs,
            tally* t) {
  for (const auto& r : rs) {
    ++t->suites;
    t->cases += r.cases_run;
    const char* verdict = "ok";
    if (r.cases_run == 0) {
      ++t->vacuous;
      verdict = "VACUOUS";
    } else if (!r.ok) {
      ++t->failed;
      verdict = "FAILED";
    }
    std::printf("  [%-7s] %-58s %4zu cases, %2zu discarded\n", verdict,
                (group + "/" + r.name).c_str(), r.cases_run, r.discarded);
    if (!r.ok && !r.message.empty()) std::printf("%s\n", r.message.c_str());
  }
}

std::vector<check::result> law_bundles() {
  std::vector<check::result> rs;
  const auto add = [&rs](std::vector<check::result> more) {
    for (auto& r : more) rs.push_back(std::move(r));
  };
  add(check::abelian_group_properties<std::int64_t, std::plus<>>("int64,+"));
  add(check::commutative_monoid_properties<std::uint64_t, std::multiplies<>>(
      "uint64,*"));
  add(check::monoid_properties<std::string, std::plus<>>("string,+"));
  add(check::abelian_group_properties<double, std::plus<>>("double,+"));
  add(check::group_properties<double, std::multiplies<>>("double,*", {},
                                                         check::approx_eq()));
  add(check::abelian_group_properties<std::complex<double>, std::plus<>>(
      "complex<double>,+"));
  add(check::ring_distributivity_properties<std::int64_t>("int64"));
  add(check::strict_weak_order_properties<std::int64_t, std::less<>>(
      "int64,<"));
  add(check::strict_weak_order_properties<std::string, std::less<>>(
      "string,<"));
  return rs;
}

bool values_agree(const rewrite::value& a, const rewrite::value& b) {
  if (const auto* x = std::get_if<double>(&a)) {
    const auto* y = std::get_if<double>(&b);
    if (!y) return false;
    if (*x == *y) return true;
    if (!std::isfinite(*x) || !std::isfinite(*y)) return false;
    return std::fabs(*x - *y) <=
           1e-9 * std::max({std::fabs(*x), std::fabs(*y), 1.0});
  }
  return rewrite::value_equal(a, b);
}

std::vector<check::result> rewrite_differential() {
  rewrite::simplifier simp;
  simp.add_default_concept_rules();
  simp.enable_constant_folding();
  std::vector<check::result> rs;
  for (const char* type : {"int", "unsigned", "double"}) {
    rs.push_back(check::for_all<std::uint64_t>(
        std::string("simplify.differential[") + type + "]",
        [&simp, type](std::uint64_t raw) {
          check::random_source rs2(raw);
          const auto g = check::generate_expr(rs2, type);
          rewrite::value before;
          try {
            before = rewrite::evaluate(g.e, g.env);
          } catch (const rewrite::eval_error&) {
            throw check::discard_case{};
          }
          return values_agree(before,
                              rewrite::evaluate(simp.simplify(g.e), g.env));
        }));
  }
  return rs;
}

std::vector<check::result> transport_parity() {
  static constexpr dist::topology topos[] = {
      dist::topology::ring, dist::topology::line, dist::topology::complete,
      dist::topology::star, dist::topology::grid,
      dist::topology::random_connected};
  check::config cfg;
  cfg.cases = 15;  // each case runs two full networks
  std::vector<check::result> rs;
  rs.push_back(check::for_all<std::uint64_t>(
      "transport.parity.flooding",
      [](std::uint64_t raw) {
        check::random_source rs2(raw);
        dist::net_options opts;
        opts.nodes = 2 + rs2.below(7);
        opts.topo = topos[rs2.below(6)];
        opts.seed = static_cast<std::uint32_t>(rs2.bits());
        opts.fifo_links = rs2.chance(50);
        opts.faults.drop = 0.1 * static_cast<double>(rs2.below(4));
        opts.faults.duplicate = 0.1 * static_cast<double>(rs2.below(4));
        dist::sim_transport sim(opts);
        sim.spawn(dist::flooding_broadcast(0));
        const auto ss = sim.run(500);
        dist::parallel_transport par(opts);
        par.spawn(dist::flooding_broadcast(0));
        const auto ps = par.run(500);
        return sim.all_decisions() == par.all_decisions() &&
               ss.messages_total == ps.messages_total &&
               ss.messages_dropped == ps.messages_dropped &&
               ss.messages_duplicated == ps.messages_duplicated &&
               ss.rounds == ps.rounds;
      },
      cfg));
  return rs;
}

}  // namespace

int main() {
  std::printf("conformance report  (%s)\n", check::seed_banner().c_str());
  tally t;

  std::printf("\nalgebraic law bundles (compile-time models):\n");
  report("laws", law_bundles(), &t);

  std::printf("\nregistry axiom bridge (runtime models):\n");
  report("bridge",
         check::registry_axiom_properties(core::concept_registry::global()),
         &t);

  std::printf("\nrewrite differential oracle:\n");
  report("rewrite", rewrite_differential(), &t);

  std::printf("\ntransport backend parity:\n");
  report("transport", transport_parity(), &t);

  auto& reg = cgp::telemetry::registry::global();
  std::printf("\n%zu suites, %zu cases, %zu failed, %zu vacuous "
              "(telemetry: %lld properties, %lld cases, %lld falsified)\n",
              t.suites, t.cases, t.failed, t.vacuous,
              static_cast<long long>(
                  reg.get_counter("check.properties.executed").value()),
              static_cast<long long>(
                  reg.get_counter("check.properties.cases_executed").value()),
              static_cast<long long>(
                  reg.get_counter("check.properties.falsified").value()));
  if (t.failed > 0 || t.vacuous > 0 || t.suites == 0) {
    std::printf("conformance: FAILED\n");
    return 1;
  }
  std::printf("conformance: ok\n");
  return 0;
}
