// Section 2.1 reproduction: concept-based overloading.
//
//  * `sort` dispatches to introsort on random access and to the in-place
//    mergesort "default algorithm" otherwise — the shape to reproduce is
//    introsort-on-vector decisively beating forward-mergesort-on-list
//    (indexing wins), with zero dispatch overhead vs calling introsort
//    directly.
//  * `advance` is O(1) by concept on random access, O(n) on lists —
//    concept dispatch and classic tag dispatch are identical in cost.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <list>
#include <random>
#include <vector>

#include "sequences/checked.hpp"
#include "sequences/sort.hpp"

namespace {

std::vector<int> random_ints(std::size_t n, unsigned seed = 17) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> d(-1000000, 1000000);
  std::vector<int> v(n);
  for (int& x : v) x = d(rng);
  return v;
}

void bm_sort_vector_concept_dispatch(benchmark::State& state) {
  const auto base = random_ints(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto v = base;
    cgp::sequences::sort(v.begin(), v.end());  // dispatches to introsort
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_sort_vector_concept_dispatch)->Arg(1 << 12)->Arg(1 << 16);

void bm_sort_vector_direct_introsort(benchmark::State& state) {
  const auto base = random_ints(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto v = base;
    cgp::sequences::intro_sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_sort_vector_direct_introsort)->Arg(1 << 12)->Arg(1 << 16);

void bm_sort_vector_std(benchmark::State& state) {
  const auto base = random_ints(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto v = base;
    std::sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_sort_vector_std)->Arg(1 << 12)->Arg(1 << 16);

void bm_sort_list_default_algorithm(benchmark::State& state) {
  const auto base = random_ints(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::list<int> l(base.begin(), base.end());
    cgp::sequences::sort(l.begin(), l.end());  // forward_merge_sort
    benchmark::DoNotOptimize(&l);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_sort_list_default_algorithm)->Arg(1 << 12)->Arg(1 << 16);

void bm_advance_random_access(benchmark::State& state) {
  std::vector<int> v(1 << 16, 1);
  for (auto _ : state) {
    auto it = v.begin();
    cgp::sequences::advance(it, state.range(0));
    benchmark::DoNotOptimize(it);
  }
}
BENCHMARK(bm_advance_random_access)->Arg(1 << 15);

void bm_advance_bidirectional(benchmark::State& state) {
  std::list<int> l(1 << 16, 1);
  for (auto _ : state) {
    auto it = l.begin();
    cgp::sequences::advance(it, state.range(0));
    benchmark::DoNotOptimize(it);
  }
}
BENCHMARK(bm_advance_bidirectional)->Arg(1 << 15);

void bm_advance_tag_dispatch(benchmark::State& state) {
  std::vector<int> v(1 << 16, 1);
  for (auto _ : state) {
    auto it = v.begin();
    cgp::sequences::advance_tagged(it, state.range(0));
    benchmark::DoNotOptimize(it);
  }
}
BENCHMARK(bm_advance_tag_dispatch)->Arg(1 << 15);

void bm_checked_sort_entry_exit_handlers(benchmark::State& state) {
  const auto base = random_ints(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto v = base;
    cgp::sequences::checked::sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_checked_sort_entry_exit_handlers)->Arg(1 << 12);

void report() {
  std::printf("================================================================\n");
  std::printf("Section 2.1: concept-based overloading\n");
  std::printf("================================================================\n");
  std::printf("compile-time selection:\n");
  std::printf("  vector<int>::iterator        -> %s\n",
              std::string(cgp::sequences::sort_algorithm_for<
                          std::vector<int>::iterator>()).c_str());
  std::printf("  list<int>::iterator          -> %s\n",
              std::string(cgp::sequences::sort_algorithm_for<
                          std::list<int>::iterator>()).c_str());
  std::printf("  int*                         -> %s\n",
              std::string(cgp::sequences::sort_algorithm_for<int*>())
                  .c_str());
  std::printf("\nexpected shapes:\n"
              "  sort(vector) via dispatch == direct introsort (zero "
              "dispatch cost), ~ std::sort;\n"
              "  sort(list) default algorithm pays the O(n log^2 n) "
              "rotation merge AND cache misses;\n"
              "  advance: O(1) on random access vs O(n) on lists; concept "
              "== tag dispatch;\n"
              "  checked::sort adds the entry/exit handler + archetype "
              "auditing overhead.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
